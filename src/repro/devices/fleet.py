"""The device fleet: wiring, anycast syslog, and cross-device protocol state.

A :class:`DeviceFleet` holds every emulated device, the physical circuit
wiring between their ports, and the shared syslog "anycast" bus that the
passive-monitoring collectors subscribe to (paper section 5.4.1).  It can
bootstrap itself from FBNet Desired state — devices from the device
objects (vendor via hardware profile), wiring from the circuit objects —
which is exactly the relationship between the model and the physical
network the paper describes.
"""

from __future__ import annotations

import ipaddress
from collections.abc import Callable
from typing import Any

from repro.common.errors import DeploymentError
from repro.devices.emulator import EmulatedDevice
from repro.simulation.clock import EventScheduler

__all__ = ["DeviceFleet"]


class DeviceFleet:
    """All emulated devices plus the physical and logical glue."""

    def __init__(self, scheduler: EventScheduler | None = None):
        self.scheduler = scheduler or EventScheduler()
        self.devices: dict[str, EmulatedDevice] = {}
        # (device name, interface) -> (device name, interface)
        self._wiring: dict[tuple[str, str], tuple[str, str]] = {}
        # Collectors subscribed to the syslog anycast address.
        self._syslog_collectors: list[Callable[[dict[str, Any]], None]] = []
        # ip -> (device name, interface); rebuilt when any config changes.
        self._ip_index: dict[str, tuple[str, str]] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_device(
        self,
        name: str,
        vendor: str,
        role: str = "",
        *,
        max_config_history: int | None = None,
    ) -> EmulatedDevice:
        if name in self.devices:
            raise DeploymentError(f"device {name} already exists in the fleet")
        kwargs: dict[str, Any] = {"role": role}
        if max_config_history is not None:
            kwargs["max_config_history"] = max_config_history
        device = EmulatedDevice(name, vendor, self.scheduler, **kwargs)
        device.fleet = self
        device.on_syslog(self._route_syslog)
        device.on_config_change(lambda _dev: self._invalidate_ip_index())
        self.devices[name] = device
        return device

    def get(self, name: str) -> EmulatedDevice:
        try:
            return self.devices[name]
        except KeyError:
            raise DeploymentError(f"no device named {name!r} in the fleet") from None

    def wire(self, a_name: str, a_interface: str, z_name: str, z_interface: str) -> None:
        """Connect two ports with a (virtual) circuit."""
        a_key, z_key = (a_name, a_interface), (z_name, z_interface)
        for key in (a_key, z_key):
            if key in self._wiring:
                raise DeploymentError(f"port {key} is already wired")
        self._wiring[a_key] = z_key
        self._wiring[z_key] = a_key

    def unwire(self, a_name: str, a_interface: str) -> None:
        a_key = (a_name, a_interface)
        z_key = self._wiring.pop(a_key, None)
        if z_key is not None:
            self._wiring.pop(z_key, None)

    def peer_of(
        self, device_name: str, interface: str
    ) -> tuple[EmulatedDevice, str] | None:
        """The device+interface at the far end of a wired port."""
        entry = self._wiring.get((device_name, interface))
        if entry is None:
            return None
        peer_name, peer_interface = entry
        peer = self.devices.get(peer_name)
        if peer is None:
            return None
        return peer, peer_interface

    @classmethod
    def from_fbnet(cls, store, scheduler: EventScheduler | None = None) -> DeviceFleet:
        """Boot a fleet matching FBNet Desired state.

        Devices come from the device objects (vendor via the hardware
        profile); circuit wiring comes from the circuit objects' endpoint
        interfaces.
        """
        from repro.fbnet.models import Circuit, Device

        fleet = cls(scheduler)
        for device in store.all(Device):
            fleet.add_device(device.name, device.vendor().value, role=device.role.value)
        for circuit in store.all(Circuit):
            a_pif = circuit.related("a_interface")
            z_pif = circuit.related("z_interface")
            if a_pif is None or z_pif is None:
                continue
            a_dev = a_pif.related("linecard").related("device")
            z_dev = z_pif.related("linecard").related("device")
            fleet.wire(a_dev.name, a_pif.name, z_dev.name, z_pif.name)
        return fleet

    def sync_wiring(self, store) -> None:
        """Re-derive the wiring from FBNet circuits (after design changes)."""
        from repro.fbnet.models import Circuit

        self._wiring.clear()
        for circuit in store.all(Circuit):
            a_pif = circuit.related("a_interface")
            z_pif = circuit.related("z_interface")
            if a_pif is None or z_pif is None:
                continue
            a_dev = a_pif.related("linecard").related("device")
            z_dev = z_pif.related("linecard").related("device")
            if a_dev.name in self.devices and z_dev.name in self.devices:
                self.wire(a_dev.name, a_pif.name, z_dev.name, z_pif.name)

    # ------------------------------------------------------------------
    # Syslog anycast bus
    # ------------------------------------------------------------------

    def subscribe_syslog(self, collector: Callable[[dict[str, Any]], None]) -> None:
        """Register a collector on the syslog anycast address."""
        self._syslog_collectors.append(collector)

    def _route_syslog(self, event: dict[str, Any]) -> None:
        for collector in self._syslog_collectors:
            collector(event)

    # ------------------------------------------------------------------
    # Cross-device protocol state
    # ------------------------------------------------------------------

    def _invalidate_ip_index(self) -> None:
        self._ip_index = None

    def _build_ip_index(self) -> dict[str, tuple[str, str]]:
        index: dict[str, tuple[str, str]] = {}
        for device in self.devices.values():
            for if_name, stanza in device.parsed.interfaces.items():
                for prefix in (stanza.v4_prefix, stanza.v6_prefix):
                    if prefix is not None:
                        index[prefix.split("/")[0]] = (device.name, if_name)
        return index

    def device_with_ip(self, ip: str) -> tuple[EmulatedDevice, str] | None:
        """Which device/interface carries ``ip`` in its running config."""
        if self._ip_index is None:
            self._ip_index = self._build_ip_index()
        entry = self._ip_index.get(ip)
        if entry is None:
            return None
        return self.devices[entry[0]], entry[1]

    def bgp_session_state(self, device: EmulatedDevice, peer_ip: str) -> str:
        """State of one configured BGP neighbor, from both ends' configs.

        * ``idle`` — the peer ip is configured nowhere, or the peer is down;
        * ``active`` — the peer exists but hasn't configured us back (the
          cross-device dependency of paper section 1), or the underlying
          link is down;
        * ``established`` — both ends configured, transport up.
        """
        if not device.alive:
            return "idle"
        neighbor = device.parsed.bgp_neighbors.get(peer_ip)
        if neighbor is not None and neighbor.shutdown:
            return "idle"  # administratively shut (drained device)
        entry = self.device_with_ip(peer_ip)
        if entry is None:
            return "idle"
        peer_device, peer_interface = entry
        if not peer_device.alive:
            return "idle"
        # Does the peer have a reciprocal neighbor statement toward us?
        local_ip = neighbor.local_ip if neighbor else None
        if local_ip is None:
            local_ip = self._infer_local_ip(device, peer_ip)
        if local_ip is None or local_ip not in peer_device.parsed.bgp_neighbors:
            return "active"
        if peer_device.parsed.bgp_neighbors[local_ip].shutdown:
            return "active"  # the far end shut the session (drained peer)
        # Transport check: direct sessions need the connected interfaces
        # up; loopback (multihop iBGP) sessions just need both ends alive.
        local_interface = device.interface_with_ip(local_ip)
        if local_interface is None:
            return "active"
        if local_interface.startswith("lo") or peer_interface.startswith("lo"):
            return "established"
        if (
            device.interface_oper_status(local_interface) == "up"
            and peer_device.interface_oper_status(peer_interface) == "up"
        ):
            return "established"
        return "active"

    def _infer_local_ip(self, device: EmulatedDevice, peer_ip: str) -> str | None:
        """Find our address in the same subnet as ``peer_ip``."""
        try:
            peer_address = ipaddress.ip_address(peer_ip)
        except ValueError:
            return None
        for stanza in device.parsed.interfaces.values():
            for prefix in (stanza.v4_prefix, stanza.v6_prefix):
                if prefix is None:
                    continue
                interface = ipaddress.ip_interface(prefix)
                if peer_address in interface.network:
                    return str(interface.ip)
        return None

    # ------------------------------------------------------------------
    # Fleet-wide views
    # ------------------------------------------------------------------

    def config_versions(self, names: list[str] | None = None) -> dict[str, int]:
        """The running-config version of every (or the named) device(s)."""
        if names is None:
            names = sorted(self.devices)
        return {name: self.get(name).config_version for name in names}

    def all_bgp_established(self) -> bool:
        """Whether every configured BGP session in the fleet is established."""
        for device in self.devices.values():
            if not device.alive:
                continue
            for entry in device.bgp_summary():
                if entry["state"] != "established":
                    return False
        return True

    def session_states(self) -> dict[str, list[dict[str, Any]]]:
        return {
            name: device.bgp_summary()
            for name, device in sorted(self.devices.items())
            if device.alive
        }

    def __len__(self) -> int:
        return len(self.devices)
