"""Vendor config parsers: raw config text → a normalized view.

The two dialects match the paper's Figure 9: *vendor1* is a flat,
indentation-based industry CLI (``interface ae0`` / `` ip addr ...`` /
``!``); *vendor2* is a hierarchical curly-brace language.  Devices parse
pushed configs with their own dialect — a config in the wrong dialect is
a syntax error, which is exactly the class of mistake dryrun mode exists
to catch (section 5.3.2).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["ConfigSyntaxError", "ParsedConfig", "parse_config"]


class ConfigSyntaxError(Exception):
    """The device rejected the config text (vendor parser error)."""


@dataclass
class InterfaceStanza:
    """Normalized configuration of one interface."""

    name: str
    mtu: int | None = None
    v4_prefix: str | None = None
    v6_prefix: str | None = None
    channel_group: str | None = None
    description: str = ""
    enabled: bool = True


@dataclass
class NeighborStanza:
    """Normalized configuration of one BGP neighbor."""

    peer_ip: str
    peer_asn: int | None = None
    local_ip: str | None = None
    description: str = ""
    shutdown: bool = False
    import_policy: str = ""


@dataclass
class ParsedConfig:
    """The normalized, vendor-agnostic view of a device config."""

    hostname: str = ""
    domain: str = ""
    syslog_hosts: list[str] = field(default_factory=list)
    interfaces: dict[str, InterfaceStanza] = field(default_factory=dict)
    bgp_local_asn: int | None = None
    bgp_neighbors: dict[str, NeighborStanza] = field(default_factory=dict)
    tunnels: dict[str, str] = field(default_factory=dict)  # name -> destination
    #: policy name -> ordered rule dicts (sequence, action, protocol, ...).
    acls: dict[str, list[dict]] = field(default_factory=dict)
    #: route policy name -> matched prefixes.
    route_policies: dict[str, list[str]] = field(default_factory=dict)

    def interface(self, name: str) -> InterfaceStanza:
        if name not in self.interfaces:
            self.interfaces[name] = InterfaceStanza(name=name)
        return self.interfaces[name]


def parse_config(vendor: str, text: str) -> ParsedConfig:
    """Parse ``text`` with the given vendor's dialect."""
    if vendor == "vendor1":
        return _parse_vendor1(text)
    if vendor == "vendor2":
        return _parse_vendor2(text)
    raise ConfigSyntaxError(f"unknown vendor dialect {vendor!r}")


# ---------------------------------------------------------------------------
# Vendor 1: flat CLI
# ---------------------------------------------------------------------------

_V1_IFACE_RE = re.compile(r"^interface\s+(\S+)$")
_V1_TUNNEL_RE = re.compile(r"^interface\s+tunnel-te(\d+)$")


def _parse_vendor1(text: str) -> ParsedConfig:
    config = ParsedConfig()
    current_iface: InterfaceStanza | None = None
    current_tunnel: dict | None = None
    current_acl: str | None = None
    in_route_map = False
    in_bgp = False
    for line_no, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip()
        if not line or line.startswith("#"):
            continue
        if line == "!":
            current_iface = None
            current_acl = None
            in_route_map = False
            if current_tunnel is not None and current_tunnel.get("dest"):
                config.tunnels[current_tunnel["name"]] = current_tunnel["dest"]
            current_tunnel = None
            continue
        if line.startswith("{") or line.endswith("{") or line.endswith("};"):
            raise ConfigSyntaxError(
                f"line {line_no}: brace syntax is not valid vendor1 configuration"
            )
        stripped = line.strip()
        if not line.startswith(" "):
            in_bgp = False
            current_acl = None
            in_route_map = False
            tunnel_match = _V1_TUNNEL_RE.match(line)
            iface_match = _V1_IFACE_RE.match(line)
            if line.startswith("ip access-list "):
                current_acl = line.split(None, 2)[2]
                config.acls.setdefault(current_acl, [])
            elif line.startswith(("ipv6 prefix-list ", "ip prefix-list ")):
                parts = line.split()
                config.route_policies.setdefault(parts[2], []).append(parts[4])
            elif line.startswith("route-map "):
                config.route_policies.setdefault(line.split()[1], [])
                in_route_map = True
            elif tunnel_match:
                current_tunnel = {"name": f"tunnel-te{tunnel_match.group(1)}", "dest": ""}
            elif iface_match:
                current_iface = config.interface(iface_match.group(1))
            elif line.startswith("hostname "):
                config.hostname = line.split(None, 1)[1]
            elif line.startswith("ip domain-name "):
                config.domain = line.split(None, 2)[2]
            elif line.startswith("logging host "):
                config.syslog_hosts.append(line.split(None, 2)[2])
            elif line.startswith("router bgp "):
                in_bgp = True
                try:
                    config.bgp_local_asn = int(line.split(None, 2)[2])
                except ValueError:
                    raise ConfigSyntaxError(
                        f"line {line_no}: bad ASN in {line!r}"
                    ) from None
            elif line.startswith("mpls "):
                pass
            else:
                raise ConfigSyntaxError(f"line {line_no}: unknown statement {line!r}")
            continue
        # Indented continuation lines.
        if in_route_map:
            if not stripped.startswith("match "):
                raise ConfigSyntaxError(
                    f"line {line_no}: unknown route-map option {stripped!r}"
                )
            continue
        if current_acl is not None:
            _parse_vendor1_acl_line(config, current_acl, stripped, line_no)
            continue
        if current_tunnel is not None:
            if stripped.startswith("destination "):
                current_tunnel["dest"] = stripped.split(None, 1)[1]
            continue
        if current_iface is not None:
            _parse_vendor1_iface_line(current_iface, stripped, line_no)
            continue
        if in_bgp:
            _parse_vendor1_bgp_line(config, stripped, line_no)
            continue
        raise ConfigSyntaxError(f"line {line_no}: stray indented line {stripped!r}")
    return config


def _parse_vendor1_iface_line(iface: InterfaceStanza, line: str, line_no: int) -> None:
    if line.startswith("mtu "):
        try:
            iface.mtu = int(line.split(None, 1)[1])
        except ValueError:
            raise ConfigSyntaxError(f"line {line_no}: bad mtu {line!r}") from None
    elif line.startswith("ip addr "):
        iface.v4_prefix = line.split(None, 2)[2]
    elif line.startswith("ipv6 addr "):
        iface.v6_prefix = line.split(None, 2)[2]
    elif line.startswith("channel-group "):
        iface.channel_group = line.split(None, 1)[1]
    elif line.startswith("description "):
        iface.description = line.split(None, 1)[1]
    elif line == "shutdown":
        iface.enabled = False
    elif line == "no shutdown":
        iface.enabled = True
    elif line in ("no switchport",) or line.startswith(("load-interval", "lacp ")):
        pass
    else:
        raise ConfigSyntaxError(f"line {line_no}: unknown interface option {line!r}")


def _parse_vendor1_acl_line(
    config: ParsedConfig, policy: str, line: str, line_no: int
) -> None:
    parts = line.split()
    if len(parts) < 5 or parts[0] != "seq":
        raise ConfigSyntaxError(f"line {line_no}: malformed ACL rule {line!r}")
    try:
        rule = {
            "sequence": int(parts[1]),
            "action": parts[2],
            "protocol": parts[3],
            "source": parts[4],
            "destination": parts[5] if len(parts) > 5 else "any",
        }
    except ValueError:
        raise ConfigSyntaxError(f"line {line_no}: bad ACL sequence {parts[1]!r}") from None
    if len(parts) >= 8 and parts[6] == "eq":
        rule["port"] = int(parts[7])
    config.acls[policy].append(rule)


def _parse_vendor1_bgp_line(config: ParsedConfig, line: str, line_no: int) -> None:
    if line.startswith("neighbor "):
        parts = line.split()
        peer_ip = parts[1]
        neighbor = config.bgp_neighbors.setdefault(
            peer_ip, NeighborStanza(peer_ip=peer_ip)
        )
        if len(parts) >= 4 and parts[2] == "remote-as":
            try:
                neighbor.peer_asn = int(parts[3])
            except ValueError:
                raise ConfigSyntaxError(f"line {line_no}: bad ASN {parts[3]!r}") from None
        elif len(parts) >= 4 and parts[2] == "update-source":
            neighbor.local_ip = parts[3]
        elif len(parts) >= 4 and parts[2] == "description":
            neighbor.description = " ".join(parts[3:])
        elif len(parts) >= 3 and parts[2] == "shutdown":
            neighbor.shutdown = True
        elif len(parts) >= 5 and parts[2] == "route-map":
            neighbor.import_policy = parts[3]
        elif len(parts) >= 3 and parts[2] == "activate":
            pass
        else:
            raise ConfigSyntaxError(f"line {line_no}: unknown neighbor option {line!r}")
    elif line.startswith(("bgp router-id", "address-family", "exit-address-family")):
        pass
    else:
        raise ConfigSyntaxError(f"line {line_no}: unknown bgp statement {line!r}")


# ---------------------------------------------------------------------------
# Vendor 2: curly-brace hierarchy
# ---------------------------------------------------------------------------


class _BraceNode:
    """A node in the vendor2 config tree."""

    def __init__(self, label: str):
        self.label = label
        self.children: list[_BraceNode] = []
        self.statements: list[str] = []


def _parse_brace_tree(text: str) -> _BraceNode:
    root = _BraceNode("")
    stack = [root]
    for line_no, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.endswith("{"):
            node = _BraceNode(line[:-1].strip())
            stack[-1].children.append(node)
            stack.append(node)
        elif line == "}":
            if len(stack) == 1:
                raise ConfigSyntaxError(f"line {line_no}: unbalanced closing brace")
            stack.pop()
        elif line.endswith(";"):
            stack[-1].statements.append(line[:-1].strip())
        else:
            raise ConfigSyntaxError(
                f"line {line_no}: vendor2 statements end with ';' or '{{' "
                f"(got {line!r})"
            )
    if len(stack) != 1:
        raise ConfigSyntaxError(f"{len(stack) - 1} unclosed brace block(s)")
    return root


def _parse_vendor2(text: str) -> ParsedConfig:
    config = ParsedConfig()
    root = _parse_brace_tree(text)
    for node in root.children:
        if node.label == "system":
            _parse_vendor2_system(config, node)
        elif node.label == "interfaces":
            _parse_vendor2_interfaces(config, node)
        elif node.label == "protocols":
            _parse_vendor2_protocols(config, node)
        elif node.label == "firewall":
            _parse_vendor2_firewall(config, node)
        elif node.label == "policy-options":
            _parse_vendor2_policy_options(config, node)
        else:
            raise ConfigSyntaxError(f"unknown top-level block {node.label!r}")
    return config


def _parse_vendor2_system(config: ParsedConfig, node: _BraceNode) -> None:
    for statement in node.statements:
        if statement.startswith("host-name "):
            config.hostname = statement.split(None, 1)[1]
        elif statement.startswith("domain-name "):
            config.domain = statement.split(None, 1)[1]
    for child in node.children:
        if child.label == "syslog":
            for statement in child.statements:
                if statement.startswith("host "):
                    config.syslog_hosts.append(statement.split(None, 1)[1])


def _parse_vendor2_interfaces(config: ParsedConfig, node: _BraceNode) -> None:
    for child in node.children:
        label = child.label
        if label.startswith("replace: "):
            label = label[len("replace: ") :].strip()
        iface = config.interface(label)
        for statement in child.statements:
            if statement.startswith("mtu "):
                iface.mtu = int(statement.split(None, 1)[1])
            elif statement.startswith("description "):
                iface.description = statement.split(None, 1)[1].strip('"')
            elif statement == "disable":
                iface.enabled = False
        for sub in child.children:
            if sub.label == "unit 0":
                for family in sub.children:
                    for statement in family.statements:
                        if not statement.startswith("addr "):
                            continue
                        address = statement.split(None, 1)[1]
                        if family.label == "family inet":
                            iface.v4_prefix = address
                        elif family.label == "family inet6":
                            iface.v6_prefix = address
            elif sub.label == "gigether-options":
                for statement in sub.statements:
                    if statement.startswith("802.3ad "):
                        iface.channel_group = statement.split(None, 1)[1]


def _parse_vendor2_policy_options(config: ParsedConfig, node: _BraceNode) -> None:
    for statement_node in node.children:
        if not statement_node.label.startswith("policy-statement "):
            continue
        name = statement_node.label.split(None, 1)[1]
        prefixes = config.route_policies.setdefault(name, [])
        for statement in statement_node.statements:
            if statement.startswith("route-filter "):
                prefixes.append(statement.split()[1])


def _parse_vendor2_firewall(config: ParsedConfig, node: _BraceNode) -> None:
    for policy_node in node.children:
        if not policy_node.label.startswith("policy "):
            raise ConfigSyntaxError(
                f"unexpected firewall block {policy_node.label!r}"
            )
        policy = policy_node.label.split(None, 1)[1]
        rules = config.acls.setdefault(policy, [])
        for rule_node in policy_node.children:
            if not rule_node.label.startswith("rule "):
                continue
            rule: dict = {"sequence": int(rule_node.label.split(None, 1)[1])}
            for statement in rule_node.statements:
                key, _, value = statement.partition(" ")
                if key in ("action", "protocol", "source", "destination"):
                    rule[key] = value
                elif key == "port":
                    rule["port"] = int(value)
            rules.append(rule)


def _parse_vendor2_protocols(config: ParsedConfig, node: _BraceNode) -> None:
    for child in node.children:
        if child.label == "bgp":
            for statement in child.statements:
                if statement.startswith("local-as "):
                    config.bgp_local_asn = int(statement.split(None, 1)[1])
            for neighbor_node in child.children:
                if not neighbor_node.label.startswith("neighbor "):
                    continue
                peer_ip = neighbor_node.label.split(None, 1)[1]
                neighbor = NeighborStanza(peer_ip=peer_ip)
                for statement in neighbor_node.statements:
                    if statement.startswith("peer-as "):
                        neighbor.peer_asn = int(statement.split(None, 1)[1])
                    elif statement.startswith("local-address "):
                        neighbor.local_ip = statement.split(None, 1)[1]
                    elif statement.startswith("description "):
                        neighbor.description = statement.split(None, 1)[1].strip('"')
                    elif statement == "shutdown":
                        neighbor.shutdown = True
                    elif statement.startswith("import "):
                        neighbor.import_policy = statement.split(None, 1)[1]
                config.bgp_neighbors[peer_ip] = neighbor
        elif child.label == "mpls":
            for lsp in child.children:
                if lsp.label.startswith("label-switched-path "):
                    name = lsp.label.split(None, 1)[1]
                    for statement in lsp.statements:
                        if statement.startswith("to "):
                            config.tunnels[name] = statement.split(None, 1)[1]
