"""Emulated multi-vendor network devices.

The paper deploys to real heterogeneous routers and switches; this package
provides emulated devices faithful enough to exercise every Robotron code
path: vendor-specific config syntax and parsing, native dryrun on only one
vendor, commit-confirmed with automatic rollback, erase/copy initial
provisioning, LLDP neighborship, BGP session state driven by *both* ends'
configs, SNMP/CLI/XML-RPC/Thrift management endpoints with per-vendor
capability gaps, syslog emission, and fault injection.
"""

from repro.devices.emulator import EmulatedDevice
from repro.devices.fleet import DeviceFleet

__all__ = ["DeviceFleet", "EmulatedDevice"]
