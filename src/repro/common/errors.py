"""Exception hierarchy for the Robotron reproduction.

Every subsystem raises exceptions rooted at :class:`RobotronError` so callers
can catch broadly ("anything went wrong in the management plane") or narrowly
(a specific life-cycle stage failed).  The hierarchy mirrors the life-cycle
stages of the paper: FBNet (modeling/storage), design, config generation,
deployment, and monitoring.
"""

from __future__ import annotations


class RobotronError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# FBNet: modeling / storage / API errors
# ---------------------------------------------------------------------------


class FBNetError(RobotronError):
    """Base class for errors raised by the FBNet object store."""


class ValidationError(FBNetError):
    """A value failed a field's validation (e.g. a malformed IPv6 prefix)."""


class IntegrityError(FBNetError):
    """A write would violate data integrity (unique, FK, or model rules)."""


class ObjectDoesNotExist(FBNetError):
    """A lookup referenced an object id that is not in the store."""


class QueryError(FBNetError):
    """A read-API query was malformed (unknown field, bad operator, ...)."""


class TransactionError(FBNetError):
    """A write transaction could not complete and has been rolled back."""


class ReplicationError(FBNetError):
    """Replication-layer failure (no live master, all replicas down, ...)."""


class DurabilityError(FBNetError):
    """The write-ahead log or a snapshot is unusable (corruption, coverage
    gap, attaching to a root that already holds another store's history)."""


class RpcError(FBNetError):
    """The service layer could not complete an RPC (all replicas failed)."""


class ReplicaUnavailable(RpcError):
    """A transient replica-level failure; safe to redirect or retry.

    Raised when a service replica is down or an injected fault made this
    particular call fail — the request itself was fine, so the routing
    layer may redirect it to another replica or retry after backoff.
    """


# ---------------------------------------------------------------------------
# Life-cycle stage errors
# ---------------------------------------------------------------------------


class DesignValidationError(RobotronError):
    """A network design violates a design rule and was rejected."""

    def __init__(self, message: str, violations: list[str] | None = None):
        super().__init__(message)
        #: Individual rule violations, one human-readable string each.
        self.violations: list[str] = list(violations or [])


class ConfigGenerationError(RobotronError):
    """Config generation failed (missing data, schema mismatch, ...)."""


class TemplateError(ConfigGenerationError):
    """A config template failed to parse or render."""

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class DeploymentError(RobotronError):
    """A deployment failed; the deployer reports what was rolled back."""


class MonitoringError(RobotronError):
    """A monitoring job or pipeline stage failed."""


# ---------------------------------------------------------------------------
# Chaos layer
# ---------------------------------------------------------------------------


class FaultInjectedError(RobotronError):
    """A failure injected by the active :mod:`repro.faults` plan."""


class ProcessCrash(BaseException):
    """Simulated process death at a durability crash point.

    Raised by the WAL fault points (``wal.append_torn``,
    ``wal.append_crash``, ``wal.rotate_crash``).  Deliberately rooted at
    :class:`BaseException` — like ``SystemExit`` — so no subsystem's
    error handling (retry policies, remediation compensation, rollback
    paths) can "handle" the process dying.  Harnesses catch it at the
    top level and rebuild the store with
    :func:`repro.fbnet.durability.recover_store`.
    """
