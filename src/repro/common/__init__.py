"""Shared infrastructure used by every Robotron subsystem.

This package holds the error hierarchy, small utility helpers, and the
frozen-dataclass helpers that the rest of :mod:`repro` builds on.  Nothing in
here knows about networks; it is deliberately dependency-free.
"""

from repro.common.errors import (
    ConfigGenerationError,
    DeploymentError,
    DesignValidationError,
    FBNetError,
    IntegrityError,
    MonitoringError,
    ObjectDoesNotExist,
    QueryError,
    ReplicationError,
    RobotronError,
    RpcError,
    TemplateError,
    TransactionError,
    ValidationError,
)

__all__ = [
    "ConfigGenerationError",
    "DeploymentError",
    "DesignValidationError",
    "FBNetError",
    "IntegrityError",
    "MonitoringError",
    "ObjectDoesNotExist",
    "QueryError",
    "ReplicationError",
    "RobotronError",
    "RpcError",
    "TemplateError",
    "TransactionError",
    "ValidationError",
]
