"""Small, dependency-free helpers shared across subsystems."""

from __future__ import annotations

import itertools
import math
import re
from collections.abc import Iterable, Iterator, Sequence
from typing import TypeVar

T = TypeVar("T")

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")


def camel_to_snake(name: str) -> str:
    """Convert ``CamelCase`` to ``snake_case``.

    >>> camel_to_snake("PhysicalInterface")
    'physical_interface'
    >>> camel_to_snake("BgpV6Session")
    'bgp_v6_session'
    """
    return _CAMEL_BOUNDARY.sub("_", name).lower()


def chunked(items: Sequence[T], size: int) -> Iterator[Sequence[T]]:
    """Yield successive chunks of ``items`` with at most ``size`` elements.

    >>> list(chunked([1, 2, 3, 4, 5], 2))
    [[1, 2], [3, 4], [5]]
    """
    if size <= 0:
        raise ValueError("chunk size must be positive")
    for start in range(0, len(items), size):
        yield items[start : start + size]


def pairwise_circular(items: Sequence[T]) -> Iterator[tuple[T, T]]:
    """Yield each adjacent pair of ``items`` including (last, first).

    Useful for ring topologies.  Empty and single-element sequences yield
    nothing and a self-pair respectively.
    """
    if not items:
        return
    for a, b in zip(items, itertools.chain(items[1:], [items[0]])):
        yield a, b


def full_mesh(items: Sequence[T]) -> Iterator[tuple[T, T]]:
    """Yield every unordered pair of distinct elements (a full mesh)."""
    for i, a in enumerate(items):
        for b in items[i + 1 :]:
            yield a, b


def percentile(sorted_values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of an already *sorted* sequence.

    ``pct`` is in [0, 100].  Raises ``ValueError`` on an empty sequence.
    """
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    if pct == 0:
        return sorted_values[0]
    rank = min(len(sorted_values), max(1, math.ceil(pct / 100.0 * len(sorted_values))))
    return sorted_values[rank - 1]


def median(values: Iterable[float]) -> float:
    """Median of ``values`` (average of middle two for even counts)."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of ``values``."""
    items = list(values)
    if not items:
        raise ValueError("mean of empty sequence")
    return sum(items) / len(items)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table, used by benchmark harness output."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)
