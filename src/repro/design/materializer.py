"""Template materialization: topology templates → Desired FBNet objects.

Given a topology template, Robotron "constructs 2 BackboneRouter objects
and 4 NetworkSwitch objects ... In total, 94 objects of various types are
created in FBNet" (paper Figure 7).  This module performs that translation:
devices, linecards, physical interfaces, aggregated interfaces, circuits,
link groups, p2p prefixes, and BGP sessions — all inside one transaction,
with every relationship wired (interfaces to aggregates, circuits to
interfaces, prefixes to aggregates, sessions to devices).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import DesignValidationError
from repro.fbnet.base import Model, model_registry
from repro.fbnet.models import (
    Cluster,
    ClusterGeneration,
    ClusterStatus,
    Datacenter,
    DeviceStatus,
    HardwareProfile,
    Linecard,
    PhysicalInterface,
    Pop,
    PrefixPool,
)
from repro.fbnet.query import Expr, Op
from repro.fbnet.store import ObjectStore
from repro.design.bundles import build_bundle
from repro.design.ipam import IpAllocator
from repro.design.topology import TopologyTemplate

__all__ = ["MaterializedCluster", "PortAllocator", "materialize_cluster"]


class PortAllocator:
    """Hands out physical ports on a device, creating linecards on demand.

    Ports are consumed in (slot, port) order; the hardware profile bounds
    capacity.  Running out of ports is a design error — the template asked
    for more links than the hardware provides (section 5.1.3).
    """

    def __init__(self, store: ObjectStore, device: Model):
        self._store = store
        self._device = device
        profile = device.related("hardware_profile")
        assert isinstance(profile, HardwareProfile)
        self._profile = profile
        lc_model = profile.related("linecard_model")
        assert lc_model is not None
        self._lc_model = lc_model
        self._slot = 1
        self._port = 0
        self._linecards: dict[int, Model] = {
            lc.slot: lc for lc in store.filter(
                Linecard, Expr("device", Op.EQUAL, device.id)
            )
        }
        # Ports already consumed by existing interfaces on this device
        # (queried per linecard: both hops are index-served).
        self._used: set[tuple[int, int]] = set()
        for linecard in self._linecards.values():
            for pif in store.filter(
                PhysicalInterface, Expr("linecard", Op.EQUAL, linecard.id)
            ):
                self._used.add((linecard.slot, pif.port))

    def next_port(self) -> tuple[Model, int]:
        """Reserve the next free (linecard, port) pair, skipping used ones."""
        while True:
            if self._port >= self._lc_model.port_count:
                self._slot += 1
                self._port = 0
            if self._slot > self._profile.slot_count:
                raise DesignValidationError(
                    f"{self._device.name}: hardware profile {self._profile.name} "
                    f"has no free ports left"
                )
            candidate = (self._slot, self._port)
            self._port += 1
            if candidate not in self._used:
                break
        self._used.add(candidate)
        linecard = self._linecards.get(candidate[0])
        if linecard is None:
            linecard = self._store.create(
                Linecard,
                device=self._device,
                slot=candidate[0],
                linecard_model=self._lc_model,
            )
            self._linecards[candidate[0]] = linecard
        return linecard, candidate[1]

    def create_interface(
        self, speed_mbps: int, description: str = "", agg_interface: Model | None = None
    ) -> Model:
        """Create the next physical interface (named ``et<slot>/<port>``)."""
        linecard, port = self.next_port()
        return self._store.create(
            PhysicalInterface,
            name=f"et{linecard.slot}/{port}",
            linecard=linecard,
            port=port,
            speed_mbps=speed_mbps,
            description=description,
            agg_interface=agg_interface,
        )


@dataclass
class MaterializedCluster:
    """What one template materialization created."""

    cluster: Model
    devices: dict[str, list[Model]] = field(default_factory=dict)
    link_groups: list[Model] = field(default_factory=list)
    circuits: list[Model] = field(default_factory=list)
    bgp_sessions: list[Model] = field(default_factory=list)

    def all_devices(self) -> list[Model]:
        return [dev for group in self.devices.values() for dev in group]


def materialize_cluster(
    store: ObjectStore,
    template: TopologyTemplate,
    cluster_name: str,
    location: Model,
    *,
    generation: ClusterGeneration,
    circuit_name_prefix: str | None = None,
) -> MaterializedCluster:
    """Create every FBNet object for one cluster from ``template``.

    ``location`` is the Pop or Datacenter the cluster lives in.  Runs in a
    single transaction: a validation failure part-way leaves no objects
    behind (section 4.3.2).
    """
    if isinstance(location, Pop):
        cluster_kwargs = {"pop": location}
    elif isinstance(location, Datacenter):
        cluster_kwargs = {"datacenter": location}
    else:
        raise DesignValidationError(
            f"cluster location must be a Pop or Datacenter, got {type(location).__name__}"
        )

    scheme = template.ip_scheme
    with store.transaction():
        cluster = store.create(
            Cluster,
            name=cluster_name,
            generation=generation,
            status=ClusterStatus.TURNUP,
            v6_only=scheme.v6_only,
            **cluster_kwargs,
        )

        v6_pool = store.first(PrefixPool, Expr("name", Op.EQUAL, scheme.v6_pool))
        if v6_pool is None:
            raise DesignValidationError(f"no prefix pool named {scheme.v6_pool!r}")
        v6_alloc = IpAllocator(store, v6_pool)
        v4_alloc = None
        if scheme.v4_pool is not None:
            v4_pool = store.first(PrefixPool, Expr("name", Op.EQUAL, scheme.v4_pool))
            if v4_pool is None:
                raise DesignValidationError(f"no prefix pool named {scheme.v4_pool!r}")
            v4_alloc = IpAllocator(store, v4_pool)

        result = MaterializedCluster(cluster=cluster)

        # 1. Devices, from each group's hardware profile.
        asn_by_group: dict[str, int | None] = {}
        port_allocators: dict[int, PortAllocator] = {}
        for group in template.device_groups:
            model = model_registry.get(group.model_name)
            profile = store.first(
                HardwareProfile, Expr("name", Op.EQUAL, group.hardware_profile)
            )
            if profile is None:
                raise DesignValidationError(
                    f"no hardware profile named {group.hardware_profile!r}"
                )
            devices = []
            for index in range(1, group.count + 1):
                extra = {}
                # Role-specific location FKs (PeeringRouter.pop, etc).
                for fk_name, fk in model._meta.fk_fields.items():
                    if fk_name in ("hardware_profile", "cluster", "peer_device", "device"):
                        continue
                    if isinstance(location, fk.to):
                        extra[fk_name] = location
                device = store.create(
                    model,
                    name=f"{cluster_name}.{group.name_prefix}{index}",
                    hardware_profile=profile,
                    cluster=cluster,
                    status=DeviceStatus.PROVISIONING,
                    **extra,
                )
                devices.append(device)
                port_allocators[device.id] = PortAllocator(store, device)
            result.devices[group.group] = devices
            asn_by_group[group.group] = group.local_asn

        # 2-4. One bundle per (a-device, z-device) pair: aggregated
        # interfaces, member circuits, p2p addressing, BGP over the bundle.
        circuit_stem = circuit_name_prefix or cluster_name
        circuit_seq = 0
        for link in template.link_groups:
            local_asn = asn_by_group[link.a_group]
            peer_asn = asn_by_group[link.z_group]
            if link.bgp is not None and (local_asn is None or peer_asn is None):
                raise DesignValidationError(
                    f"link group {link.a_group}--{link.z_group} wants "
                    "BGP but a device group has no local_asn"
                )
            for a_dev in result.devices[link.a_group]:
                for z_dev in result.devices[link.z_group]:
                    names = []
                    for _ in range(link.circuits_per_bundle):
                        circuit_seq += 1
                        names.append(f"{circuit_stem}-cid-{circuit_seq:05d}")
                    bundle = build_bundle(
                        store,
                        a_dev,
                        z_dev,
                        a_ports=port_allocators[a_dev.id],
                        z_ports=port_allocators[z_dev.id],
                        circuits=link.circuits_per_bundle,
                        speed_mbps=link.circuit_speed_mbps,
                        v6_alloc=v6_alloc,
                        v4_alloc=v4_alloc,
                        bgp=link.bgp,
                        local_asn=local_asn,
                        peer_asn=peer_asn,
                        circuit_names=names,
                    )
                    result.link_groups.append(bundle.link_group)
                    result.circuits.extend(bundle.circuits)
                    result.bgp_sessions.extend(bundle.bgp_sessions)
    return result
