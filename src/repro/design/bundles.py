"""Shared bundle construction and teardown.

A *bundle* is the unit of connectivity between two devices: an aggregated
interface on each side, N parallel member circuits, a point-to-point
subnet per address family, and optionally a BGP session over the bundle
(paper Figure 4).  Template materialization, the portmap change-plan API,
and the backbone circuit tools all build and tear down bundles through
this module, so the dependency-following logic exists exactly once.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field

from repro.common.errors import DesignValidationError
from repro.fbnet.base import Model
from repro.fbnet.models import (
    AggregatedInterface,
    BgpSessionType,
    BgpV4Session,
    BgpV6Session,
    Circuit,
    CircuitStatus,
    LinkGroup,
    PhysicalInterface,
    V4Prefix,
    V6Prefix,
)
from repro.fbnet.query import And, Expr, Op
from repro.fbnet.store import ObjectStore

__all__ = ["BundleResult", "build_bundle", "find_bundle", "teardown_bundle"]


def _host_ip(prefix: str) -> str:
    return str(ipaddress.ip_interface(prefix).ip)


@dataclass
class BundleResult:
    """Objects created for one bundle."""

    link_group: Model
    a_agg: Model
    z_agg: Model
    circuits: list[Model] = field(default_factory=list)
    prefixes: list[Model] = field(default_factory=list)
    bgp_sessions: list[Model] = field(default_factory=list)


def next_agg_number(store: ObjectStore, device: Model) -> int:
    """The next free ``aeN`` number on ``device``."""
    existing = store.filter(AggregatedInterface, Expr("device", Op.EQUAL, device.id))
    return 1 + max((agg.number for agg in existing), default=-1)


def build_bundle(
    store: ObjectStore,
    a_dev: Model,
    z_dev: Model,
    *,
    a_ports,
    z_ports,
    circuits: int,
    speed_mbps: int,
    v6_alloc,
    v4_alloc=None,
    bgp: BgpSessionType | None = None,
    local_asn: int | None = None,
    peer_asn: int | None = None,
    circuit_names: list[str] | None = None,
    provider: str = "",
) -> BundleResult:
    """Create one complete bundle between ``a_dev`` and ``z_dev``.

    ``a_ports``/``z_ports`` are :class:`~repro.design.materializer.PortAllocator`
    instances for the two devices.  ``circuit_names`` supplies explicit
    circuit ids (defaults to ``<a>--<z>-cN``).
    """
    if a_dev.id == z_dev.id:
        raise DesignValidationError("a bundle cannot connect a device to itself")
    a_num = next_agg_number(store, a_dev)
    a_agg = store.create(
        AggregatedInterface,
        name=f"ae{a_num}",
        device=a_dev,
        number=a_num,
        description=f"bundle to {z_dev.name}",
    )
    z_num = next_agg_number(store, z_dev)
    z_agg = store.create(
        AggregatedInterface,
        name=f"ae{z_num}",
        device=z_dev,
        number=z_num,
        description=f"bundle to {a_dev.name}",
    )
    link_group = store.create(
        LinkGroup,
        name=f"{a_dev.name}--{z_dev.name}",
        a_agg_interface=a_agg,
        z_agg_interface=z_agg,
    )
    result = BundleResult(link_group=link_group, a_agg=a_agg, z_agg=z_agg)

    suffix = 0
    for index in range(circuits):
        a_pif = a_ports.create_interface(
            speed_mbps, description=f"to {z_dev.name}", agg_interface=a_agg
        )
        z_pif = z_ports.create_interface(
            speed_mbps, description=f"to {a_dev.name}", agg_interface=z_agg
        )
        if circuit_names is not None:
            name = circuit_names[index]
        else:
            # Migrated circuits keep their birth names, so a default name
            # may already be taken by a member now living elsewhere.
            suffix += 1
            while store.exists(
                Circuit, Expr("name", Op.EQUAL, f"{link_group.name}-c{suffix}")
            ):
                suffix += 1
            name = f"{link_group.name}-c{suffix}"
        circuit = store.create(
            Circuit,
            name=name,
            a_interface=a_pif,
            z_interface=z_pif,
            link_group=link_group,
            status=CircuitStatus.PROVISIONING,
            speed_mbps=speed_mbps,
            provider=provider,
        )
        result.circuits.append(circuit)

    a_v6, z_v6 = v6_alloc.assign_p2p(a_agg, z_agg)
    result.prefixes.extend([a_v6, z_v6])
    a_v4 = z_v4 = None
    if v4_alloc is not None:
        a_v4, z_v4 = v4_alloc.assign_p2p(a_agg, z_agg)
        result.prefixes.extend([a_v4, z_v4])

    if bgp is not None:
        if local_asn is None or peer_asn is None:
            raise DesignValidationError(
                f"bundle {link_group.name}: BGP requested without both ASNs"
            )
        session = store.create(
            BgpV6Session,
            device=a_dev,
            peer_device=z_dev,
            session_type=bgp,
            local_asn=local_asn,
            peer_asn=peer_asn,
            local_ip=_host_ip(a_v6.prefix),
            peer_ip=_host_ip(z_v6.prefix),
            description=f"{bgp.value} {a_dev.name} <-> {z_dev.name}",
        )
        result.bgp_sessions.append(session)
        if a_v4 is not None and z_v4 is not None:
            session4 = store.create(
                BgpV4Session,
                device=a_dev,
                peer_device=z_dev,
                session_type=bgp,
                local_asn=local_asn,
                peer_asn=peer_asn,
                local_ip=_host_ip(a_v4.prefix),
                peer_ip=_host_ip(z_v4.prefix),
                description=f"{bgp.value} {a_dev.name} <-> {z_dev.name} v4",
            )
            result.bgp_sessions.append(session4)
    return result


def find_bundle(store: ObjectStore, a_dev: Model, z_dev: Model) -> Model | None:
    """The link group between two devices, in either orientation."""
    for name in (f"{a_dev.name}--{z_dev.name}", f"{z_dev.name}--{a_dev.name}"):
        bundle = store.first(LinkGroup, Expr("name", Op.EQUAL, name))
        if bundle is not None:
            return bundle
    return None


def teardown_bundle(store: ObjectStore, link_group: Model) -> dict[str, int]:
    """Delete a bundle and everything hanging off it, dependency-first.

    Follows relationships the way the paper describes circuit deletion
    (section 5.1.2): BGP sessions and prefixes on the bundle's aggregated
    interfaces go first, then member circuits and their physical
    interfaces, then the aggregated interfaces and the link group itself.
    Returns a per-type count of deleted objects.
    """
    deleted: dict[str, int] = {}

    def note(obj: Model) -> None:
        deleted[type(obj).__name__] = deleted.get(type(obj).__name__, 0) + 1

    a_agg = link_group.related("a_agg_interface")
    z_agg = link_group.related("z_agg_interface")
    assert a_agg is not None and z_agg is not None
    a_dev = a_agg.related("device")
    z_dev = z_agg.related("device")
    assert a_dev is not None and z_dev is not None

    with store.transaction():
        # Collect the bundle's interface addresses, then delete the BGP
        # sessions riding on them (not every session between the device
        # pair — parallel bundles each carry their own session).
        bundle_ips: set[str] = set()
        bundle_prefixes: list[Model] = []
        for agg in (a_agg, z_agg):
            for model in (V4Prefix, V6Prefix):
                for prefix in store.filter(model, Expr("interface", Op.EQUAL, agg.id)):
                    bundle_prefixes.append(prefix)
                    bundle_ips.add(_host_ip(prefix.prefix))
        if bundle_ips:
            for model in (BgpV4Session, BgpV6Session):
                sessions = store.filter(
                    model,
                    And(
                        Expr("device", Op.EQUAL, [a_dev.id, z_dev.id]),
                        Expr("local_ip", Op.EQUAL, sorted(bundle_ips)),
                    ),
                )
                for session in sessions:
                    note(session)
                    store.delete(session)
        for prefix in bundle_prefixes:
            note(prefix)
            store.delete(prefix)

        # Member circuits and their endpoint physical interfaces.
        member_pifs: list[Model] = []
        for circuit in store.filter(Circuit, Expr("link_group", Op.EQUAL, link_group.id)):
            for side in ("a_interface", "z_interface"):
                pif = circuit.related(side)
                if pif is not None:
                    member_pifs.append(pif)
            note(circuit)
            store.delete(circuit)
        for pif in member_pifs:
            note(pif)
            store.delete(pif)

        # The aggregated interfaces and the link group.
        note(link_group)
        store.delete(link_group)
        for agg in (a_agg, z_agg):
            note(agg)
            store.delete(agg)
    return deleted
