"""Cluster-generation catalog and cluster life-cycle operations.

Figure 12 of the paper tracks the evolution of cluster architectures:
Gen1 POP clusters merged into bigger Gen2 clusters via in-place upgrades,
while DC clusters went through three coexisting generations (Gen1 L2,
Gen2 L3 BGP, Gen3 v6-only) — DC architecture shifts happen by building
new clusters and decommissioning old ones.  This module provides the
per-generation topology templates and the upgrade/decommission
operations the Figure 12 simulation drives.
"""

from __future__ import annotations

from repro.common.errors import DesignValidationError
from repro.fbnet.base import Model
from repro.fbnet.models import (
    BgpSessionType,
    Cluster,
    ClusterGeneration,
    ClusterStatus,
    DeviceStatus,
    LinkGroup,
)
from repro.fbnet.query import Expr, Op, Or
from repro.fbnet.store import ObjectStore
from repro.design.bundles import teardown_bundle
from repro.design.materializer import MaterializedCluster, materialize_cluster
from repro.design.topology import (
    DeviceGroupSpec,
    IpSchemeSpec,
    LinkGroupSpec,
    TopologyTemplate,
    four_post_pop_template,
)

__all__ = [
    "build_cluster",
    "decommission_cluster",
    "template_for_generation",
    "upgrade_pop_cluster_in_place",
]


def _pop_gen1_template() -> TopologyTemplate:
    """Gen1 POP: a small 2-post cluster (2 PRs, 2 PSWs, 4 TORs)."""
    return TopologyTemplate(
        name="pop-gen1-2post",
        device_groups=(
            DeviceGroupSpec("PR", "PeeringRouter", 2, "Router_Vendor1", "pr", 65501),
            DeviceGroupSpec("PSW", "NetworkSwitch", 2, "Switch_Vendor2", "psw", 65101),
            DeviceGroupSpec("TOR", "RackSwitch", 4, "Switch_Vendor2", "tor", None),
        ),
        link_groups=(
            LinkGroupSpec("PSW", "PR", circuits_per_bundle=1, bgp=BgpSessionType.EBGP),
            LinkGroupSpec("TOR", "PSW", circuits_per_bundle=1, bgp=None),
        ),
        ip_scheme=IpSchemeSpec(v6_pool="pop-p2p-v6", v4_pool="pop-p2p-v4"),
    )


def _pop_gen2_template() -> TopologyTemplate:
    """Gen2 POP: the paper's bigger 4-post cluster (Figure 2), with the
    TOR tier the figure shows below the PSW fabric."""
    base = four_post_pop_template(v4_pool="pop-p2p-v4")
    return TopologyTemplate(
        name="pop-gen2-4post",
        device_groups=base.device_groups + (
            DeviceGroupSpec("TOR", "RackSwitch", 8, "Switch_Vendor2", "tor", None),
        ),
        link_groups=base.link_groups + (
            LinkGroupSpec("TOR", "PSW", circuits_per_bundle=2, bgp=None),
        ),
        ip_scheme=base.ip_scheme,
    )


def _dc_gen1_template() -> TopologyTemplate:
    """Gen1 DC: L2 cluster — DRs and PSWs, no BGP inside the cluster."""
    return TopologyTemplate(
        name="dc-gen1-l2",
        device_groups=(
            DeviceGroupSpec("DR", "DatacenterRouter", 2, "Router_Vendor1", "dr", None),
            DeviceGroupSpec("PSW", "NetworkSwitch", 4, "Switch_Vendor2", "psw", None),
            DeviceGroupSpec("TOR", "RackSwitch", 8, "Switch_Vendor2", "tor", None),
        ),
        link_groups=(
            LinkGroupSpec("PSW", "DR", circuits_per_bundle=2, bgp=None),
            LinkGroupSpec("TOR", "PSW", circuits_per_bundle=1, bgp=None),
        ),
        ip_scheme=IpSchemeSpec(v6_pool="dc-p2p-v6", v4_pool="dc-p2p-v4"),
    )


def _dc_gen2_template() -> TopologyTemplate:
    """Gen2 DC: L3 BGP cluster — the transition that created BGPV4Session."""
    return TopologyTemplate(
        name="dc-gen2-l3",
        device_groups=(
            DeviceGroupSpec("DR", "DatacenterRouter", 4, "Router_Vendor1", "dr", 65401),
            DeviceGroupSpec("PSW", "NetworkSwitch", 4, "Switch_Vendor2", "psw", 65201),
            DeviceGroupSpec("TOR", "RackSwitch", 12, "Switch_Vendor2", "tor", 65301),
        ),
        link_groups=(
            LinkGroupSpec("PSW", "DR", circuits_per_bundle=2, bgp=BgpSessionType.EBGP),
            LinkGroupSpec("TOR", "PSW", circuits_per_bundle=2, bgp=BgpSessionType.EBGP),
        ),
        ip_scheme=IpSchemeSpec(v6_pool="dc-p2p-v6", v4_pool="dc-p2p-v4"),
    )


def _dc_gen3_template() -> TopologyTemplate:
    """Gen3 DC: v6-only cluster, built after private IPv4 exhaustion."""
    return TopologyTemplate(
        name="dc-gen3-v6only",
        device_groups=(
            DeviceGroupSpec("DR", "DatacenterRouter", 4, "Router_Vendor1", "dr", 65401),
            DeviceGroupSpec("PSW", "NetworkSwitch", 8, "Switch_Vendor2", "psw", 65201),
            DeviceGroupSpec("TOR", "RackSwitch", 16, "Switch_Vendor2", "tor", 65301),
        ),
        link_groups=(
            LinkGroupSpec("PSW", "DR", circuits_per_bundle=2, bgp=BgpSessionType.EBGP),
            LinkGroupSpec("TOR", "PSW", circuits_per_bundle=2, bgp=BgpSessionType.EBGP),
        ),
        ip_scheme=IpSchemeSpec(v6_pool="dc-p2p-v6", v4_pool=None),
    )


_TEMPLATES = {
    ClusterGeneration.POP_GEN1: _pop_gen1_template,
    ClusterGeneration.POP_GEN2: _pop_gen2_template,
    ClusterGeneration.DC_GEN1: _dc_gen1_template,
    ClusterGeneration.DC_GEN2: _dc_gen2_template,
    ClusterGeneration.DC_GEN3: _dc_gen3_template,
}


def template_for_generation(generation: ClusterGeneration) -> TopologyTemplate:
    """The catalog template for one cluster generation (Figure 12)."""
    return _TEMPLATES[generation]()


def build_cluster(
    store: ObjectStore,
    name: str,
    location: Model,
    generation: ClusterGeneration,
) -> MaterializedCluster:
    """Build a cluster of ``generation`` from its catalog template."""
    result = materialize_cluster(
        store,
        template_for_generation(generation),
        name,
        location,
        generation=generation,
    )
    with store.transaction():
        store.update(result.cluster, status=ClusterStatus.PRODUCTION)
        for device in result.all_devices():
            store.update(device, status=DeviceStatus.PRODUCTION)
    return result


def decommission_cluster(store: ObjectStore, cluster: Cluster) -> dict[str, int]:
    """Tear down a cluster: bundles first, then devices, then the cluster.

    This is how DC architecture shifts retire previous generations
    (Figure 12) — and the end of a DC cluster's life cycle due to
    space/power shifts or hardware refreshes.
    """
    deleted: dict[str, int] = {}

    def note(obj: Model) -> None:
        deleted[type(obj).__name__] = deleted.get(type(obj).__name__, 0) + 1

    with store.transaction():
        devices = _cluster_devices(store, cluster)
        device_ids = [d.id for d in devices]
        bundles = store.filter(
            LinkGroup,
            Or(
                Expr("a_agg_interface.device", Op.EQUAL, device_ids),
                Expr("z_agg_interface.device", Op.EQUAL, device_ids),
            ),
        ) if device_ids else []
        for bundle in bundles:
            for model_name, count in teardown_bundle(store, bundle).items():
                deleted[model_name] = deleted.get(model_name, 0) + count
        for device in devices:
            note(device)
            store.delete(device)
        note(cluster)
        store.delete(cluster)
    return deleted


def _cluster_devices(store: ObjectStore, cluster: Cluster) -> list[Model]:
    from repro.fbnet.models import Device

    return store.filter(Device, Expr("cluster", Op.EQUAL, cluster.id))


def upgrade_pop_cluster_in_place(
    store: ObjectStore,
    cluster: Cluster,
    new_generation: ClusterGeneration,
) -> MaterializedCluster:
    """In-place POP architecture upgrade (Figure 12).

    POPs lack the space/power to run old and new clusters side by side,
    so upgrades replace the cluster at the same site under the same name:
    tear down, then rebuild from the new generation's template.
    """
    if new_generation not in (
        ClusterGeneration.POP_GEN1,
        ClusterGeneration.POP_GEN2,
    ):
        raise DesignValidationError(
            f"{new_generation} is not a POP generation"
        )
    pop = cluster.related("pop")
    if pop is None:
        raise DesignValidationError(
            f"cluster {cluster.name} is not a POP cluster"
        )
    name = cluster.name
    with store.transaction():
        decommission_cluster(store, cluster)
        return build_cluster(store, name, pop, new_generation)
