"""Declarative fleet profiles: the whole synthetic network in one value.

The paper's Robotron manages hundreds of thousands of objects; the
reproduction's benchmarks and chaos runs need fleet sizes that are
reproducible and named.  A :class:`FleetProfile` pins everything a build
needs — regions, sites, cluster generations, backbone shape — and
:func:`build_fleet` materializes it deterministically, so two runs (or
two stores with different shard counts) produce byte-identical designs.

Two stock profiles:

* :data:`FLEET_224` — the historical baseline: 8 DC Gen3 clusters in
  3 regions, 224 devices.  Small enough for every tier-1 test.
* :data:`FLEET_2K` — ROADMAP item 1's scale target: 64 DC Gen3 and
  16 POP Gen2 clusters plus a cross-region backbone ring, 2000+ devices
  across 6 regions.  The sharded-store benchmark runs the full
  management cycle against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.seeds import SeededEnvironment, seed_environment
from repro.design.backbone import BackboneDesignTool
from repro.design.cluster import build_cluster
from repro.design.materializer import MaterializedCluster
from repro.fbnet.base import Model
from repro.fbnet.models import ClusterGeneration
from repro.fbnet.store import ObjectStore

__all__ = ["FLEET_224", "FLEET_2K", "FleetBuild", "FleetProfile", "build_fleet"]

#: Devices per cluster generation (see repro.design.cluster templates).
_GENERATION_DEVICES = {
    ClusterGeneration.POP_GEN1: 8,
    ClusterGeneration.POP_GEN2: 14,
    ClusterGeneration.DC_GEN1: 14,
    ClusterGeneration.DC_GEN2: 20,
    ClusterGeneration.DC_GEN3: 28,
}


@dataclass(frozen=True)
class FleetProfile:
    """Everything one synthetic fleet build needs, as a value."""

    name: str
    region_names: tuple[str, ...]
    datacenter_count: int
    pop_count: int
    backbone_site_count: int
    #: DC clusters built per datacenter site.
    dc_clusters_per_site: int = 1
    dc_generation: ClusterGeneration = ClusterGeneration.DC_GEN3
    #: POP clusters built per POP site (0 = POP sites stay empty).
    pop_clusters_per_site: int = 0
    pop_generation: ClusterGeneration = ClusterGeneration.POP_GEN2
    #: Backbone routers per backbone site; consecutive routers are joined
    #: by a circuit ring, which crosses regions (sites round-robin across
    #: them) — the home-shard rule's cross-region objects.
    backbone_routers_per_site: int = 0
    #: Also join every backbone router into the full BGP mesh.
    backbone_mesh: bool = False

    @property
    def device_count(self) -> int:
        """Devices the profile materializes (clusters + backbone routers)."""
        return (
            self.datacenter_count
            * self.dc_clusters_per_site
            * _GENERATION_DEVICES[self.dc_generation]
            + self.pop_count
            * self.pop_clusters_per_site
            * _GENERATION_DEVICES[self.pop_generation]
            + self.backbone_site_count * self.backbone_routers_per_site
        )


@dataclass
class FleetBuild:
    """Handles to what :func:`build_fleet` created."""

    profile: FleetProfile
    env: SeededEnvironment
    clusters: list[MaterializedCluster] = field(default_factory=list)
    backbone_routers: list[Model] = field(default_factory=list)

    def all_devices(self) -> list[Model]:
        devices: list[Model] = []
        for cluster in self.clusters:
            devices.extend(cluster.all_devices())
        devices.extend(self.backbone_routers)
        return devices


#: The historical 224-device baseline (8 x DC Gen3 across 3 regions).
FLEET_224 = FleetProfile(
    name="fleet_224",
    region_names=("na-east", "na-west", "eu-central"),
    datacenter_count=8,
    pop_count=2,
    backbone_site_count=2,
)

#: ROADMAP item 1's scale target: ~2k devices across 6 regions.
FLEET_2K = FleetProfile(
    name="fleet_2k",
    region_names=(
        "na-east",
        "na-west",
        "eu-central",
        "eu-west",
        "ap-south",
        "ap-east",
    ),
    datacenter_count=32,
    dc_clusters_per_site=2,
    pop_count=16,
    pop_clusters_per_site=1,
    backbone_site_count=6,
    backbone_routers_per_site=1,
    backbone_mesh=True,
)


def build_fleet(store: ObjectStore, profile: FleetProfile) -> FleetBuild:
    """Materialize ``profile`` into ``store``, deterministically.

    Site seeding, cluster builds, and backbone growth all happen in name
    order, so the resulting object graph (ids, journal, digests) depends
    only on the profile — not on the store's shard count or the worker
    pool size.
    """
    env = seed_environment(
        store,
        region_names=profile.region_names,
        pop_count=profile.pop_count,
        datacenter_count=profile.datacenter_count,
        backbone_site_count=profile.backbone_site_count,
    )
    build = FleetBuild(profile=profile, env=env)

    for site_name in sorted(env.datacenters):
        site = env.datacenters[site_name]
        for index in range(1, profile.dc_clusters_per_site + 1):
            build.clusters.append(
                build_cluster(
                    store,
                    f"{site_name}.c{index:02d}",
                    site,
                    profile.dc_generation,
                )
            )
    for site_name in sorted(env.pops):
        site = env.pops[site_name]
        for index in range(1, profile.pop_clusters_per_site + 1):
            build.clusters.append(
                build_cluster(
                    store,
                    f"{site_name}.c{index:02d}",
                    site,
                    profile.pop_generation,
                )
            )

    if profile.backbone_routers_per_site:
        backbone = BackboneDesignTool(store)
        for site_name in sorted(env.backbone_sites):
            site = env.backbone_sites[site_name]
            for index in range(1, profile.backbone_routers_per_site + 1):
                build.backbone_routers.append(
                    backbone.add_router(
                        f"{site_name}-br{index:02d}", site, "Router_Vendor1"
                    )
                )
        # A circuit ring over the routers: consecutive backbone sites sit
        # in different regions, so these circuits (and the mesh's BGP
        # sessions) are exactly the cross-region objects the sharded
        # store's home-shard rule has to place.
        routers = build.backbone_routers
        if len(routers) > 1:
            for position, router in enumerate(routers):
                peer = routers[(position + 1) % len(routers)]
                if len(routers) == 2 and position == 1:
                    break  # two routers need one circuit, not two
                backbone.add_circuit(router.name, peer.name)
        if profile.backbone_mesh:
            for router in routers:
                backbone.join_mesh(router)

    return build
