"""Design rules: automatic validation of Desired state (paper section 5.1.3).

Network design errors are a major cause of outages.  Robotron embeds rules
that validate objects when translating template and tool inputs into FBNet
objects: data-integrity checks on value and relationship fields, duplicate
avoidance, and cross-object consistency (e.g. "point-to-point IP addresses
of a circuit are rejected if they belong to different subnets", section 1).

Every rule is a function ``rule(store) -> list[str]`` returning
human-readable violations.  :data:`DEFAULT_RULES` bundles them for use as
:class:`~repro.design.changes.DesignChange` validators.
"""

from __future__ import annotations

import ipaddress
from collections import Counter

from repro.fbnet.models import (
    AggregatedInterface,
    BgpSessionType,
    BgpV4Session,
    BgpV6Session,
    Circuit,
    CircuitStatus,
    HardwareProfile,
    LinkGroup,
    PhysicalInterface,
    V4Prefix,
    V6Prefix,
)
from repro.fbnet.store import ObjectStore

__all__ = [
    "DEFAULT_RULES",
    "rule_agg_members_on_same_device",
    "rule_bgp_sessions_share_subnet",
    "rule_bgp_asn_consistency",
    "rule_bundle_members_consistent",
    "rule_circuit_endpoints",
    "rule_no_overlapping_p2p_subnets",
    "rule_p2p_prefixes_same_subnet",
    "rule_port_capacity",
    "validate",
]


def _pif_device(store: ObjectStore, pif) -> object:
    linecard = pif.related("linecard")
    return linecard.related("device") if linecard is not None else None


def rule_circuit_endpoints(store: ObjectStore) -> list[str]:
    """Active circuits must terminate at two interfaces on different devices."""
    violations = []
    for circuit in store.all(Circuit):
        if circuit.status in (CircuitStatus.PLANNED, CircuitStatus.DECOMMISSIONED):
            continue
        a_pif = circuit.related("a_interface")
        z_pif = circuit.related("z_interface")
        if a_pif is None or z_pif is None:
            violations.append(
                f"circuit {circuit.name}: must be associated with two "
                f"physical interfaces (a={a_pif}, z={z_pif})"
            )
            continue
        if a_pif.id == z_pif.id:
            violations.append(
                f"circuit {circuit.name}: both endpoints are the same interface"
            )
            continue
        a_dev = _pif_device(store, a_pif)
        z_dev = _pif_device(store, z_pif)
        if a_dev is not None and z_dev is not None and a_dev.id == z_dev.id:
            violations.append(
                f"circuit {circuit.name}: both endpoints on device {a_dev.name}"
            )
    return violations


def rule_p2p_prefixes_same_subnet(store: ObjectStore) -> list[str]:
    """The two ends of a bundle must take addresses from the same subnet."""
    violations = []
    # Precompute interface id -> subnets, per family, in one pass.
    nets_by_interface: dict[str, dict[int, set]] = {"v4": {}, "v6": {}}
    for model, family in ((V4Prefix, "v4"), (V6Prefix, "v6")):
        for prefix_obj in store.all(model):
            nets_by_interface[family].setdefault(prefix_obj.interface_id, set()).add(
                ipaddress.ip_interface(prefix_obj.prefix).network
            )
    for bundle in store.all(LinkGroup):
        a_agg = bundle.related("a_agg_interface")
        z_agg = bundle.related("z_agg_interface")
        if a_agg is None or z_agg is None:
            violations.append(f"link group {bundle.name}: missing an endpoint")
            continue
        for family in ("v4", "v6"):
            a_nets = nets_by_interface[family].get(a_agg.id, set())
            z_nets = nets_by_interface[family].get(z_agg.id, set())
            if (a_nets or z_nets) and not (a_nets & z_nets):
                violations.append(
                    f"link group {bundle.name}: {family} endpoint addresses "
                    f"belong to different subnets ({a_nets} vs {z_nets})"
                )
    return violations


def rule_no_overlapping_p2p_subnets(store: ObjectStore) -> list[str]:
    """Distinct bundles must not share or overlap p2p subnets."""
    violations = []
    for model in (V4Prefix, V6Prefix):
        seen: dict = {}
        for prefix_obj in store.all(model):
            interface = ipaddress.ip_interface(prefix_obj.prefix)
            if str(interface) in seen:
                violations.append(
                    f"duplicate prefix {interface} "
                    f"(objects {seen[str(interface)]} and {prefix_obj.id})"
                )
            seen[str(interface)] = prefix_obj.id
    return violations


def rule_agg_members_on_same_device(store: ObjectStore) -> list[str]:
    """A physical interface may only join a bundle on its own device."""
    violations = []
    for pif in store.all(PhysicalInterface):
        if pif.agg_interface_id is None:
            continue
        agg = pif.related("agg_interface")
        pif_dev = _pif_device(store, pif)
        if agg is None or pif_dev is None:
            continue
        if agg.device_id != pif_dev.id:
            violations.append(
                f"interface {pif_dev.name}:{pif.name} grouped into {agg.name} "
                f"which belongs to a different device"
            )
    return violations


def rule_bundle_members_consistent(store: ObjectStore) -> list[str]:
    """A bundle's member circuits must land on the bundle's two aggregates."""
    violations = []
    for circuit in store.all(Circuit):
        if circuit.link_group_id is None:
            continue
        bundle = circuit.related("link_group")
        assert bundle is not None
        expected = {bundle.a_agg_interface_id, bundle.z_agg_interface_id}
        actual = set()
        for side in ("a_interface", "z_interface"):
            pif = circuit.related(side)
            if pif is not None and pif.agg_interface_id is not None:
                actual.add(pif.agg_interface_id)
        if actual and not actual.issubset(expected):
            violations.append(
                f"circuit {circuit.name}: members not on link group "
                f"{bundle.name}'s aggregated interfaces"
            )
    return violations


def rule_bgp_sessions_share_subnet(store: ObjectStore) -> list[str]:
    """Both addresses of a BGP session must fall in one connected subnet."""
    violations = []
    for model, prefix_model in (
        (BgpV4Session, V4Prefix),
        (BgpV6Session, V6Prefix),
    ):
        # All known connected subnets, for membership testing.
        subnets = {
            ipaddress.ip_interface(p.prefix).network for p in store.all(prefix_model)
        }
        for session in store.all(model):
            local = ipaddress.ip_address(session.local_ip)
            peer = ipaddress.ip_address(session.peer_ip)
            shared = any(local in net and peer in net for net in subnets)
            if session.session_type is BgpSessionType.EBGP and not shared:
                violations.append(
                    f"eBGP session {session.local_ip}<->{session.peer_ip} on "
                    f"{session.related('device').name}: endpoints not in a "
                    "common connected subnet"
                )
    return violations


def rule_bgp_asn_consistency(store: ObjectStore) -> list[str]:
    """iBGP sessions join equal ASNs; eBGP sessions join different ASNs."""
    violations = []
    for model in (BgpV4Session, BgpV6Session):
        for session in store.all(model):
            same = session.local_asn == session.peer_asn
            if session.session_type is BgpSessionType.IBGP and not same:
                violations.append(
                    f"iBGP session {session.local_ip}<->{session.peer_ip}: "
                    f"ASNs differ ({session.local_asn} vs {session.peer_asn})"
                )
            if session.session_type is BgpSessionType.EBGP and same:
                violations.append(
                    f"eBGP session {session.local_ip}<->{session.peer_ip}: "
                    f"ASNs equal ({session.local_asn})"
                )
    return violations


def rule_port_capacity(store: ObjectStore) -> list[str]:
    """No device may have more interfaces than its hardware provides."""
    violations = []
    per_device: Counter = Counter()
    device_of: dict = {}
    for pif in store.all(PhysicalInterface):
        device = _pif_device(store, pif)
        if device is None:
            continue
        per_device[device.id] += 1
        device_of[device.id] = device
    for device_id, used in per_device.items():
        device = device_of[device_id]
        profile = device.related("hardware_profile")
        assert isinstance(profile, HardwareProfile)
        capacity = profile.total_ports()
        if used > capacity:
            violations.append(
                f"device {device.name}: {used} interfaces exceed hardware "
                f"profile {profile.name} capacity of {capacity}"
            )
    return violations


#: The standard rule set applied by design tools before committing.
DEFAULT_RULES = [
    rule_circuit_endpoints,
    rule_p2p_prefixes_same_subnet,
    rule_no_overlapping_p2p_subnets,
    rule_agg_members_on_same_device,
    rule_bundle_members_consistent,
    rule_bgp_sessions_share_subnet,
    rule_bgp_asn_consistency,
    rule_port_capacity,
]


def validate(store: ObjectStore, rules=None) -> list[str]:
    """Run ``rules`` (default: all) against the store; returns violations."""
    violations: list[str] = []
    for rule in rules or DEFAULT_RULES:
        violations.extend(rule(store))
    return violations
