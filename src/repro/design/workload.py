"""Synthetic read workloads: Zipf-popular queries over a built fleet.

Robotron's read APIs serve engineers, config generators, and dashboards —
traffic that is famously skewed: a few hot devices (the ones being
deployed, drained, or debugged right now) absorb most of the lookups
while the long tail is touched rarely.  :class:`ZipfReadWorkload`
reproduces that shape so the read-front-door benchmark and the
cache-consistency suites exercise a realistic request stream:

* object popularity follows a Zipf law — the rank-``r`` target is drawn
  with weight ``1 / (r + 1) ** exponent`` — over a seeded shuffle of the
  population (popularity is decoupled from alphabetical order);
* the request *mix* blends cheap indexed lookups (a device's detail
  page, its linecards) with expensive scan-shaped queries (every device
  on a site, fleet-wide drain counts), mirroring dashboard traffic;
* everything is driven by one :class:`random.Random` seed, so two
  workloads built over byte-identical fleets produce byte-identical
  request streams — the property the cache-consistency CI matrix leans
  on.

Requests are :class:`ReadSpec` values — model, projected fields, and the
query in wire form — directly feedable to ``ReadApi.get``,
``ReadCache.get``/``multi_get``, or an :class:`~repro.fbnet.rpc.RpcRequest`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.fbnet.api import ReadApi
from repro.fbnet.models import Device
from repro.fbnet.models.enums import DeviceStatus, DrainState
from repro.fbnet.query import Expr, Op
from repro.fbnet.store import ObjectStore

__all__ = ["ReadSpec", "ZipfReadWorkload"]

#: Request-kind mix (must sum to 1): mostly hot indexed lookups, with a
#: scan-shaped minority — the dashboard queries that dominate wall time.
KIND_SHARES = (
    ("device_page", 0.45),
    ("device_linecards", 0.25),
    ("site_devices", 0.20),
    ("drain_scan", 0.10),
)

#: The device detail page: one indexed unique-name lookup plus an FK
#: dereference into the hardware profile.
DEVICE_PAGE_FIELDS = (
    "name",
    "status",
    "drain_state",
    "hardware_profile.name",
    "hardware_profile.vendor",
)


@dataclass(frozen=True)
class ReadSpec:
    """One read request: model, projection, and query in wire form."""

    model: str
    fields: tuple[str, ...] | None
    query: dict | None
    #: Which mix bucket produced it (reporting only; not part of identity).
    kind: str = "adhoc"

    def to_wire(self) -> dict:
        """The ``multi_get`` wire form."""
        return {
            "model": self.model,
            "fields": list(self.fields) if self.fields is not None else None,
            "query": self.query,
        }


def _zipf_weights(count: int, exponent: float) -> list[float]:
    return [1.0 / (rank + 1.0) ** exponent for rank in range(count)]


class ZipfReadWorkload:
    """A seeded stream of :class:`ReadSpec` requests over one fleet.

    ``devices`` is ``(name, id)`` pairs and ``sites`` the distinct site
    prefixes; both are shuffled by the seed so popularity rank is
    independent of build order.  Use :meth:`over_store` to derive the
    populations from a built store.
    """

    def __init__(
        self,
        devices: list[tuple[str, int]],
        sites: list[str],
        *,
        seed: int = 1337,
        exponent: float = 1.1,
    ):
        if not devices:
            raise ValueError("workload needs a non-empty device population")
        self.seed = seed
        self.exponent = exponent
        self._rng = random.Random(seed)
        self._devices = sorted(devices)
        self._sites = sorted(sites)
        self._rng.shuffle(self._devices)
        self._rng.shuffle(self._sites)
        self._device_weights = _zipf_weights(len(self._devices), exponent)
        self._site_weights = _zipf_weights(len(self._sites), exponent)
        self._kinds = [kind for kind, _ in KIND_SHARES]
        self._kind_weights = [share for _, share in KIND_SHARES]
        self._drain_states = [state.value for state in DrainState]

    @classmethod
    def over_store(
        cls,
        store: ObjectStore,
        *,
        seed: int = 1337,
        exponent: float = 1.1,
    ) -> "ZipfReadWorkload":
        """Derive the populations from every device in ``store``.

        The site prefix is the hostname's first dotted component
        (``'pop07.c01.psw1'`` → ``'pop07'``), matching the fleet
        builder's naming scheme.
        """
        rows = ReadApi(store).get("Device", ("name",), None)
        devices = [(row["name"], row["id"]) for row in rows]
        sites = sorted({name.split(".", 1)[0] for name, _ in devices})
        return cls(devices, sites, seed=seed, exponent=exponent)

    # -- drawing requests ----------------------------------------------

    def next(self) -> ReadSpec:
        """Draw the next request in the stream."""
        kind = self._rng.choices(self._kinds, weights=self._kind_weights)[0]
        if kind == "device_page":
            name, _ = self._pick(self._devices, self._device_weights)
            return ReadSpec(
                "Device",
                DEVICE_PAGE_FIELDS,
                Expr("name", Op.EQUAL, name).to_wire(),
                kind=kind,
            )
        if kind == "device_linecards":
            _, device_id = self._pick(self._devices, self._device_weights)
            return ReadSpec(
                "Linecard",
                ("slot",),
                Expr("device", Op.EQUAL, device_id).to_wire(),
                kind=kind,
            )
        if kind == "site_devices":
            site = self._pick(self._sites, self._site_weights)
            return ReadSpec(
                "Device",
                ("name", "status"),
                Expr("name", Op.STARTSWITH, f"{site}.").to_wire(),
                kind=kind,
            )
        # drain_scan: a fleet-wide dashboard tile — deliberately a scan.
        state = self._rng.choice(self._drain_states)
        return ReadSpec(
            "Device",
            ("name",),
            Expr("drain_state", Op.EQUAL, state).to_wire(),
            kind="drain_scan",
        )

    def _pick(self, population: list, weights: list[float]):
        return self._rng.choices(population, weights=weights)[0]

    def requests(self, count: int) -> list[ReadSpec]:
        """The next ``count`` requests."""
        return [self.next() for _ in range(count)]

    def batches(self, count: int, size: int) -> list[list[ReadSpec]]:
        """``count`` multi-get batches of ``size`` requests each."""
        return [self.requests(size) for _ in range(count)]

    # -- mutation storms (for consistency suites) ----------------------

    def mutation(self, store: ObjectStore) -> None:
        """Apply one seeded mutation: flip a Zipf-popular device's state.

        Drawn from the same popularity distribution as the reads, so the
        storm concentrates invalidations on the cache's hottest entries —
        the worst case for stale serves.
        """
        name, _ = self._pick(self._devices, self._device_weights)
        device = store.filter(Device, Expr("name", Op.EQUAL, name))[0]
        if self._rng.random() < 0.5:
            cycle = [state.value for state in DrainState]
            current = device.drain_state.value
            nxt = cycle[(cycle.index(current) + 1) % len(cycle)]
            store.update(device, drain_state=DrainState(nxt))
        else:
            cycle = [status.value for status in DeviceStatus]
            current = device.status.value
            nxt = cycle[(cycle.index(current) + 1) % len(cycle)]
            store.update(device, status=DeviceStatus(nxt))
