"""Backbone design tools: incremental device and circuit changes.

The backbone "employs a constantly changing asymmetrical architecture"
(paper section 5.1.2): tens of router additions/deletions and hundreds of
circuit additions, migrations, and deletions per month.  These tools give
users high-level primitives — ``add_router``, ``delete_router``,
``add_circuit``, ``migrate_circuit`` — and do the complex object
validation and dependency manipulation in the backend:

* adding or removing an edge router updates the iBGP full mesh by
  creating/deleting session objects involving *all* other edge routers,
  and regenerates the MPLS-TE tunnel mesh;
* migrating a circuit deletes or re-associates the interface, prefix,
  and BGP session objects on one router and creates new ones on the
  other, following FBNet relationship fields.
"""

from __future__ import annotations

from repro.common.errors import DesignValidationError
from repro.fbnet.base import Model
from repro.fbnet.models import (
    BackboneRouter,
    BackboneSite,
    BgpSessionType,
    BgpV6Session,
    Circuit,
    DatacenterRouter,
    Device,
    DeviceStatus,
    HardwareProfile,
    LoopbackInterface,
    MplsTunnel,
    PeeringRouter,
    PrefixPool,
)
from repro.fbnet.query import Expr, Op, Or
from repro.fbnet.store import ObjectStore
from repro.design.bundles import build_bundle, find_bundle, teardown_bundle
from repro.design.ipam import IpAllocator
from repro.design.materializer import PortAllocator
from repro.design.portmap import (
    PortmapChangePlan,
    PortmapSpec,
    execute_change_plan,
)

__all__ = ["BackboneDesignTool"]


class BackboneDesignTool:
    """High-level primitives for incremental backbone design changes."""

    def __init__(
        self,
        store: ObjectStore,
        *,
        backbone_asn: int = 32934,
        p2p_v6_pool: str = "backbone-p2p-v6",
        p2p_v4_pool: str | None = None,
        loopback_v6_pool: str = "backbone-loopback-v6",
    ):
        self._store = store
        self.backbone_asn = backbone_asn
        self.p2p_v6_pool = p2p_v6_pool
        self.p2p_v4_pool = p2p_v4_pool
        self.loopback_v6_pool = loopback_v6_pool

    # ------------------------------------------------------------------
    # Routers
    # ------------------------------------------------------------------

    def add_router(
        self, name: str, site: Model, hardware_profile_name: str
    ) -> Model:
        """Create a backbone router with a loopback allocation."""
        profile = self._store.first(
            HardwareProfile, Expr("name", Op.EQUAL, hardware_profile_name)
        )
        if profile is None:
            raise DesignValidationError(
                f"no hardware profile named {hardware_profile_name!r}"
            )
        if not isinstance(site, BackboneSite):
            raise DesignValidationError("backbone routers live at a BackboneSite")
        with self._store.transaction():
            router = self._store.create(
                BackboneRouter,
                name=name,
                hardware_profile=profile,
                site=site,
                status=DeviceStatus.PROVISIONING,
            )
            self._assign_loopback(router)
        return router

    def _assign_loopback(self, device: Model) -> None:
        loopback = self._store.create(
            LoopbackInterface, name="lo0", device=device, unit=0
        )
        allocator = self._loopback_allocator()
        prefix = allocator.assign_host(loopback)
        self._store.update(device, loopback_v6=prefix.prefix.split("/")[0])

    def delete_router(self, name: str) -> dict[str, int]:
        """The paper's ``delete`` command: remove a router and everything on it.

        Tears down every bundle terminating at the router, removes its
        iBGP mesh sessions and MPLS tunnels, then deletes the router
        object (cascading its linecards, interfaces, and loopbacks).
        """
        router = self._router(name)
        deleted: dict[str, int] = {}

        def merge(counts: dict[str, int]) -> None:
            for key, value in counts.items():
                deleted[key] = deleted.get(key, 0) + value

        with self._store.transaction():
            if self._is_edge_node(router):
                merge(self.leave_mesh(router))
            for bundle in self._bundles_of(router):
                merge(teardown_bundle(self._store, bundle))
            # Cascade removes linecards, loopbacks, physical interfaces,
            # aggregated interfaces, and their prefixes.
            self._store.delete(router)
            deleted[type(router).__name__] = deleted.get(type(router).__name__, 0) + 1
        return deleted

    def _router(self, name: str) -> Model:
        router = self._store.first(Device, Expr("name", Op.EQUAL, name))
        if router is None:
            raise DesignValidationError(f"no device named {name!r}")
        return router

    def _bundles_of(self, device: Model) -> list[Model]:
        from repro.fbnet.models import LinkGroup

        return self._store.filter(
            LinkGroup,
            Or(
                Expr("a_agg_interface.device", Op.EQUAL, device.id),
                Expr("z_agg_interface.device", Op.EQUAL, device.id),
            ),
        )

    # ------------------------------------------------------------------
    # Circuits
    # ------------------------------------------------------------------

    def add_circuit(
        self, a_name: str, z_name: str, *, speed_mbps: int = 100_000
    ) -> dict:
        """Add one circuit between two backbone devices.

        Grows the existing bundle if one exists (long-haul capacity
        augmentation, section 2.3); otherwise creates a new single-circuit
        bundle with fresh addressing.
        """
        a_dev = self._router(a_name)
        z_dev = self._router(z_name)
        bundle = find_bundle(self._store, a_dev, z_dev)
        with self._store.transaction():
            if bundle is None:
                plan = PortmapChangePlan(
                    new=PortmapSpec(
                        a_device=a_name,
                        z_device=z_name,
                        circuits=1,
                        speed_mbps=speed_mbps,
                        v6_pool=self.p2p_v6_pool,
                        v4_pool=self.p2p_v4_pool,
                    )
                )
                return execute_change_plan(self._store, plan)
            members = self._store.count(
                Circuit, Expr("link_group", Op.EQUAL, bundle.id)
            )
            spec = PortmapSpec(
                a_device=a_name,
                z_device=z_name,
                circuits=members + 1,
                speed_mbps=speed_mbps,
                v6_pool=self.p2p_v6_pool,
                v4_pool=self.p2p_v4_pool,
            )
            plan = PortmapChangePlan(old=spec, new=spec)
            return execute_change_plan(self._store, plan)

    def delete_circuit(self, circuit_name: str) -> dict:
        """Delete one circuit; tears down its bundle when it was the last."""
        circuit = self._store.first(Circuit, Expr("name", Op.EQUAL, circuit_name))
        if circuit is None:
            raise DesignValidationError(f"no circuit named {circuit_name!r}")
        with self._store.transaction():
            bundle = circuit.related("link_group")
            pifs = [circuit.related("a_interface"), circuit.related("z_interface")]
            self._store.delete(circuit)
            for pif in pifs:
                if pif is not None:
                    self._store.delete(pif)
            report = {"operation": "delete_circuit", "circuit": circuit_name}
            if bundle is not None:
                remaining = self._store.count(
                    Circuit, Expr("link_group", Op.EQUAL, bundle.id)
                )
                if remaining == 0:
                    teardown_bundle(self._store, bundle)
                    report["bundle_removed"] = bundle.name
            return report

    def migrate_circuit(self, circuit_name: str, new_z_name: str) -> dict:
        """Move one end of a circuit to a different router.

        Deletes or re-associates the existing interface, prefix, and BGP
        session on the old router and creates new ones on the new one
        (paper section 5.1.2): the member leaves its old bundle (tearing
        it down if empty) and joins — or creates — the bundle toward the
        new device.
        """
        circuit = self._store.first(Circuit, Expr("name", Op.EQUAL, circuit_name))
        if circuit is None:
            raise DesignValidationError(f"no circuit named {circuit_name!r}")
        a_pif = circuit.related("a_interface")
        z_pif = circuit.related("z_interface")
        if a_pif is None or z_pif is None:
            raise DesignValidationError(
                f"circuit {circuit_name} is not fully connected"
            )
        a_dev = a_pif.related("linecard").related("device")
        new_z = self._router(new_z_name)
        if new_z.id == a_dev.id:
            raise DesignValidationError(
                f"cannot migrate {circuit_name} onto its own A-end {a_dev.name}"
            )
        speed = circuit.speed_mbps
        with self._store.transaction():
            old_bundle = circuit.related("link_group")
            # Disconnect: clear associations, delete the old Z interface.
            self._store.update(circuit, z_interface=None, link_group=None)
            self._store.delete(z_pif)
            if old_bundle is not None:
                remaining = self._store.count(
                    Circuit, Expr("link_group", Op.EQUAL, old_bundle.id)
                )
                if remaining == 0:
                    # This member carried the bundle; the A-end pif dies with
                    # it, so reconnect the circuit from scratch afterwards.
                    self._store.update(circuit, a_interface=None)
                    self._store.delete(a_pif)
                    teardown_bundle(self._store, old_bundle)
                    a_pif = None

            target_bundle = find_bundle(self._store, a_dev, new_z)
            if target_bundle is None:
                result = build_bundle(
                    self._store,
                    a_dev,
                    new_z,
                    a_ports=PortAllocator(self._store, a_dev),
                    z_ports=PortAllocator(self._store, z_dev := new_z),
                    circuits=0,
                    speed_mbps=speed,
                    v6_alloc=self._p2p_allocator(6),
                    v4_alloc=self._p2p_allocator(4) if self.p2p_v4_pool else None,
                )
                target_bundle = result.link_group
            t_a_agg = target_bundle.related("a_agg_interface")
            t_z_agg = target_bundle.related("z_agg_interface")
            if t_a_agg.device_id != a_dev.id:
                t_a_agg, t_z_agg = t_z_agg, t_a_agg
            if a_pif is None:
                a_pif = PortAllocator(self._store, a_dev).create_interface(
                    speed, description=f"to {new_z.name}", agg_interface=t_a_agg
                )
            else:
                self._store.update(
                    a_pif, agg_interface=t_a_agg, description=f"to {new_z.name}"
                )
            new_z_pif = PortAllocator(self._store, new_z).create_interface(
                speed, description=f"to {a_dev.name}", agg_interface=t_z_agg
            )
            self._store.update(
                circuit,
                a_interface=a_pif,
                z_interface=new_z_pif,
                link_group=target_bundle,
            )
        return {
            "operation": "migrate_circuit",
            "circuit": circuit_name,
            "a_device": a_dev.name,
            "new_z_device": new_z.name,
            "bundle": target_bundle.name,
        }

    # ------------------------------------------------------------------
    # iBGP mesh and MPLS-TE tunnel mesh over the edge nodes
    # ------------------------------------------------------------------

    def edge_nodes(self) -> list[Model]:
        """The backbone edge: every PR and DR with a loopback."""
        nodes: list[Model] = []
        for model in (PeeringRouter, DatacenterRouter):
            nodes.extend(
                device
                for device in self._store.all(model)
                if device.loopback_v6 is not None
            )
        return nodes

    def _is_edge_node(self, device: Model) -> bool:
        return isinstance(device, (PeeringRouter, DatacenterRouter))

    def join_mesh(self, device: Model) -> dict[str, int]:
        """Add a node to the iBGP full mesh and the MPLS-TE tunnel mesh.

        Creates an iBGP session object and a pair of directional tunnels
        toward *every* existing edge node — the high fan-out dependency
        the paper highlights (sections 1 and 5.1.2).
        """
        if device.loopback_v6 is None:
            raise DesignValidationError(
                f"{device.name} needs a loopback before joining the mesh"
            )
        created = {"BgpV6Session": 0, "MplsTunnel": 0}
        with self._store.transaction():
            for other in self.edge_nodes():
                if other.id == device.id:
                    continue
                if self._mesh_session(device, other) is None:
                    self._store.create(
                        BgpV6Session,
                        device=device,
                        peer_device=other,
                        session_type=BgpSessionType.IBGP,
                        local_asn=self.backbone_asn,
                        peer_asn=self.backbone_asn,
                        local_ip=device.loopback_v6,
                        peer_ip=other.loopback_v6,
                        description=f"ibgp {device.name} <-> {other.name}",
                    )
                    created["BgpV6Session"] += 1
                for head, tail in ((device, other), (other, device)):
                    name = f"te-{head.name}--{tail.name}"
                    if self._store.exists(MplsTunnel, Expr("name", Op.EQUAL, name)):
                        continue
                    self._store.create(
                        MplsTunnel,
                        name=name,
                        head_device=head,
                        tail_device=tail,
                    )
                    created["MplsTunnel"] += 1
        return created

    def leave_mesh(self, device: Model) -> dict[str, int]:
        """Remove a node's iBGP sessions and tunnels from the mesh."""
        deleted = {"BgpV6Session": 0, "MplsTunnel": 0}
        with self._store.transaction():
            sessions = self._store.filter(
                BgpV6Session,
                Or(
                    Expr("device", Op.EQUAL, device.id),
                    Expr("peer_device", Op.EQUAL, device.id),
                ),
            )
            for session in sessions:
                if session.session_type is BgpSessionType.IBGP:
                    self._store.delete(session)
                    deleted["BgpV6Session"] += 1
            tunnels = self._store.filter(
                MplsTunnel,
                Or(
                    Expr("head_device", Op.EQUAL, device.id),
                    Expr("tail_device", Op.EQUAL, device.id),
                ),
            )
            for tunnel in tunnels:
                self._store.delete(tunnel)
                deleted["MplsTunnel"] += 1
        return deleted

    def _mesh_session(self, a: Model, b: Model) -> Model | None:
        for device, peer in ((a, b), (b, a)):
            session = self._store.first(
                BgpV6Session,
                Expr("device", Op.EQUAL, device.id)
                & Expr("peer_ip", Op.EQUAL, peer.loopback_v6),
            )
            if session is not None:
                return session
        return None

    def mesh_is_complete(self) -> bool:
        """Whether the iBGP mesh covers every edge-node pair exactly once."""
        nodes = self.edge_nodes()
        expected = len(nodes) * (len(nodes) - 1) // 2
        sessions = [
            s
            for s in self._store.all(BgpV6Session)
            if s.session_type is BgpSessionType.IBGP
        ]
        return len(sessions) == expected

    # ------------------------------------------------------------------
    # Allocators
    # ------------------------------------------------------------------

    def _p2p_allocator(self, version: int) -> IpAllocator:
        name = self.p2p_v6_pool if version == 6 else self.p2p_v4_pool
        assert name is not None
        pool = self._store.first(PrefixPool, Expr("name", Op.EQUAL, name))
        if pool is None:
            raise DesignValidationError(f"no prefix pool named {name!r}")
        return IpAllocator(self._store, pool)

    def _loopback_allocator(self) -> IpAllocator:
        pool = self._store.first(
            PrefixPool, Expr("name", Op.EQUAL, self.loopback_v6_pool)
        )
        if pool is None:
            raise DesignValidationError(
                f"no prefix pool named {self.loopback_v6_pool!r}"
            )
        return IpAllocator(self._store, pool)
