"""Network design: translating human intent into Desired FBNet objects.

This package implements the first stage of Robotron's management life
cycle (paper section 5.1):

* :mod:`repro.design.ipam` — rule-based IP allocation from Desired pools
  (the fix for the ping-for-free-IPs era recounted in section 7);
* :mod:`repro.design.topology` — topology templates for POP/DC fat-trees
  (Figure 7);
* :mod:`repro.design.materializer` — template materialization into FBNet
  objects;
* :mod:`repro.design.portmap` — the portmap change-plan write API
  (Figure 4, section 4.2.2);
* :mod:`repro.design.backbone` — incremental device/circuit design tools
  with dependency resolution (section 5.1.2);
* :mod:`repro.design.validation` — design rules (section 5.1.3);
* :mod:`repro.design.changes` — design-change transactions with audit
  logging and per-type accounting (Figures 15);
* :mod:`repro.design.cluster` — the cluster-generation catalog
  (Figure 12).
"""

from repro.design.backbone import BackboneDesignTool
from repro.design.changes import ChangeSummary, DesignChange
from repro.design.cluster import (
    build_cluster,
    decommission_cluster,
    template_for_generation,
    upgrade_pop_cluster_in_place,
)
from repro.design.concurrency import ChangeCoordinator, DesignConflict
from repro.design.ipam import IpAllocator
from repro.design.materializer import PortAllocator, materialize_cluster
from repro.design.portmap import PortmapChangePlan, PortmapSpec
from repro.design.topology import (
    DeviceGroupSpec,
    IpSchemeSpec,
    LinkGroupSpec,
    TopologyTemplate,
    four_post_pop_template,
)
from repro.design.validation import DEFAULT_RULES, validate
from repro.design.workload import ReadSpec, ZipfReadWorkload

__all__ = [
    "BackboneDesignTool",
    "ChangeCoordinator",
    "ChangeSummary",
    "DEFAULT_RULES",
    "DesignChange",
    "DesignConflict",
    "DeviceGroupSpec",
    "IpAllocator",
    "IpSchemeSpec",
    "LinkGroupSpec",
    "PortAllocator",
    "PortmapChangePlan",
    "PortmapSpec",
    "ReadSpec",
    "TopologyTemplate",
    "ZipfReadWorkload",
    "build_cluster",
    "decommission_cluster",
    "four_post_pop_template",
    "materialize_cluster",
    "template_for_generation",
    "upgrade_pop_cluster_in_place",
    "validate",
]
