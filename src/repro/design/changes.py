"""Design changes: atomic, reviewed, audited intent mutations.

A *design change* is "an atomic operation that stores a human-specified
change to FBNet.  It can be as simple as migrating a single circuit or as
complex as building an entire cluster" (paper section 6.2).  This module
wraps any design-tool work in a :class:`DesignChange` context that:

* runs everything in one FBNet transaction;
* runs the design-rule validators before committing (section 5.1.3);
* shows the resulting change summary to a reviewer, who must confirm —
  rejection rolls the whole change back;
* requires an employee id and a ticket id, and logs the change as a
  ``DesignChangeEntry`` for history (section 5.1.3);
* accounts created/modified/deleted objects per type — the data behind
  the paper's Figure 15.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any

from repro.common.errors import DesignValidationError
from repro.fbnet.models import DesignChangeEntry
from repro.fbnet.store import ChangeOp, ObjectStore
from repro.obs import flight

__all__ = ["ChangeSummary", "DesignChange"]

#: Models excluded from change accounting (audit metadata, not design).
_ACCOUNTING_EXCLUDED = {"DesignChangeEntry"}


@dataclass
class ChangeSummary:
    """What one design change did, deduplicated per object.

    An object both created and updated within the change counts once as
    created; created-then-deleted nets out to nothing; updated-then-
    deleted counts as deleted.
    """

    created: dict[str, int] = field(default_factory=dict)
    modified: dict[str, int] = field(default_factory=dict)
    deleted: dict[str, int] = field(default_factory=dict)

    @property
    def created_total(self) -> int:
        return sum(self.created.values())

    @property
    def modified_total(self) -> int:
        return sum(self.modified.values())

    @property
    def deleted_total(self) -> int:
        return sum(self.deleted.values())

    @property
    def total(self) -> int:
        """Total changed objects — the Figure 15 'changed objects' metric."""
        return self.created_total + self.modified_total + self.deleted_total

    def per_type(self) -> dict[str, dict[str, int]]:
        types = set(self.created) | set(self.modified) | set(self.deleted)
        return {
            name: {
                "created": self.created.get(name, 0),
                "modified": self.modified.get(name, 0),
                "deleted": self.deleted.get(name, 0),
            }
            for name in sorted(types)
        }

    def describe(self) -> str:
        lines = [
            f"created={self.created_total} modified={self.modified_total} "
            f"deleted={self.deleted_total}"
        ]
        for name, counts in self.per_type().items():
            lines.append(
                f"  {name}: +{counts['created']} ~{counts['modified']} "
                f"-{counts['deleted']}"
            )
        return "\n".join(lines)


def summarize_journal(records) -> ChangeSummary:
    """Fold journal records into a deduplicated :class:`ChangeSummary`."""
    # Final disposition per object: track the sequence of ops.
    state: dict[tuple[str, int], str] = {}
    for record in records:
        if record.model in _ACCOUNTING_EXCLUDED:
            continue
        key = (record.model, record.obj_id)
        previous = state.get(key)
        if record.op is ChangeOp.CREATE:
            state[key] = "created"
        elif record.op is ChangeOp.UPDATE:
            if previous != "created":
                state[key] = "modified"
        else:  # DELETE
            if previous == "created":
                state.pop(key)  # created and deleted inside the change
            else:
                state[key] = "deleted"

    summary = ChangeSummary()
    buckets = {
        "created": summary.created,
        "modified": summary.modified,
        "deleted": summary.deleted,
    }
    for (model, _obj_id), disposition in state.items():
        bucket = buckets[disposition]
        bucket[model] = bucket.get(model, 0) + 1
    return summary


class DesignChange:
    """Context manager around one atomic design change.

    Usage::

        with DesignChange(store, employee_id="e123", ticket_id="T-9",
                          description="add circuit", domain="backbone") as dc:
            ...design-tool calls against store...
        dc.summary  # per-type accounting after commit

    ``reviewer`` is called with the :class:`ChangeSummary` before commit;
    returning False (or raising) rejects the change and rolls it back —
    the paper's "users visually review and confirm" gate.  ``validators``
    run before review; any returned violation aborts the change.
    """

    def __init__(
        self,
        store: ObjectStore,
        *,
        employee_id: str,
        ticket_id: str,
        description: str = "",
        domain: str = "",
        reviewer: Callable[[ChangeSummary], bool] | None = None,
        validators: list[Callable[[ObjectStore], list[str]]] | None = None,
        committed_at: float = 0.0,
    ):
        if not employee_id or not ticket_id:
            raise DesignValidationError(
                "design changes require an employee id and a ticket id"
            )
        self._store = store
        self.employee_id = employee_id
        self.ticket_id = ticket_id
        self.description = description
        self.domain = domain
        self.reviewer = reviewer
        self.validators = list(validators or [])
        self.committed_at = committed_at
        self.summary: ChangeSummary | None = None
        self.entry: DesignChangeEntry | None = None
        #: The flight-recorder change id this design change ran under.
        self.change_id = ""
        self._txn_cm: Any = None
        self._flight_cm: Any = None
        self._journal_start = 0

    def __enter__(self) -> DesignChange:
        # The flight context opens before the transaction so the journal
        # records the change writes are stamped with its id — this is
        # where intent (ticket, description) first meets the model layer.
        self._flight_cm = flight.change_context(
            f"{self.ticket_id}: {self.description}" if self.description
            else self.ticket_id
        )
        self.change_id = self._flight_cm.__enter__().change_id
        self._txn_cm = self._store.transaction()
        self._txn_cm.__enter__()
        # Pending records live in the store's in-flight transaction buffer.
        self._journal_start = len(self._store._pending_records)
        return self

    def _close_flight(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if self._flight_cm is not None:
            self._flight_cm.__exit__(exc_type, exc, tb)
            self._flight_cm = None

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        if exc_type is not None:
            self._txn_cm.__exit__(exc_type, exc, tb)
            self._close_flight(exc_type, exc, tb)
            return False
        try:
            violations: list[str] = []
            for validator in self.validators:
                violations.extend(validator(self._store))
            if violations:
                raise DesignValidationError(
                    f"design change rejected: {len(violations)} rule violation(s)",
                    violations=violations,
                )
            pending = self._store._pending_records[self._journal_start :]
            self.summary = summarize_journal(pending)
            if self.reviewer is not None and not self.reviewer(self.summary):
                raise DesignValidationError("design change rejected by reviewer")
            self.entry = self._store.create(
                DesignChangeEntry,
                employee_id=self.employee_id,
                ticket_id=self.ticket_id,
                description=self.description,
                domain=self.domain,
                committed_at=self.committed_at,
                created_count=self.summary.created_total,
                modified_count=self.summary.modified_total,
                deleted_count=self.summary.deleted_total,
                per_type_counts=self.summary.per_type(),
            )
        except BaseException as inner:
            self._txn_cm.__exit__(type(inner), inner, inner.__traceback__)
            self._close_flight(type(inner), inner, inner.__traceback__)
            raise
        self._txn_cm.__exit__(None, None, None)
        flight.record(
            "change.commit",
            phase="intent",
            change_id=self.change_id,
            verdict="committed",
            detail=self.summary.describe().splitlines()[0],
        )
        self._close_flight(None, None, None)
        return False
