"""The portmap write API: change-plan driven connectivity edits.

A *portmap* describes the connectivity between a device pair — Figure 4's
two parallel 10G circuits aggregated into a 20G bundle.  The write API of
paper section 4.2.2 "takes a change plan as the input including an old
portmap and a new portmap, and carries out portmap creation, migration,
update, deletion, etc, accordingly, while enforcing network design rules".

The four operations:

* **create** — old is None: build the bundle from scratch;
* **delete** — new is None: tear the bundle down, dependency-first;
* **update** — same device pair, different width/speed: grow or shrink
  the member circuit set in place;
* **migrate** — an endpoint moved to a different device: tear down the
  old side's objects and create new ones on the new device, reusing the
  untouched endpoint's port assignments where possible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import DesignValidationError
from repro.fbnet.base import Model
from repro.fbnet.models import (
    BgpSessionType,
    Circuit,
    CircuitStatus,
    Device,
    PhysicalInterface,
    PrefixPool,
)
from repro.fbnet.query import Expr, Op
from repro.fbnet.store import ObjectStore
from repro.design.bundles import build_bundle, find_bundle, teardown_bundle
from repro.design.ipam import IpAllocator
from repro.design.materializer import PortAllocator

__all__ = ["PortmapChangePlan", "PortmapSpec", "execute_change_plan"]


@dataclass(frozen=True)
class PortmapSpec:
    """Desired connectivity between one device pair."""

    a_device: str
    z_device: str
    circuits: int
    speed_mbps: int = 10_000
    v6_pool: str = "backbone-p2p-v6"
    v4_pool: str | None = None
    bgp: BgpSessionType | None = None
    local_asn: int | None = None
    peer_asn: int | None = None

    def __post_init__(self) -> None:
        if self.circuits < 1:
            raise DesignValidationError("a portmap needs at least one circuit")
        if self.a_device == self.z_device:
            raise DesignValidationError("a portmap cannot connect a device to itself")

    @property
    def pair(self) -> frozenset[str]:
        return frozenset((self.a_device, self.z_device))


@dataclass(frozen=True)
class PortmapChangePlan:
    """Input to the portmap write API: the old and new desired portmaps."""

    old: PortmapSpec | None = None
    new: PortmapSpec | None = None

    def __post_init__(self) -> None:
        if self.old is None and self.new is None:
            raise DesignValidationError("change plan needs an old or new portmap")

    @property
    def operation(self) -> str:
        if self.old is None:
            return "create"
        if self.new is None:
            return "delete"
        if self.old.pair == self.new.pair:
            return "update"
        return "migrate"


def _device(store: ObjectStore, name: str) -> Model:
    device = store.first(Device, Expr("name", Op.EQUAL, name))
    if device is None:
        raise DesignValidationError(f"no device named {name!r}")
    return device


def _allocator(store: ObjectStore, pool_name: str) -> IpAllocator:
    pool = store.first(PrefixPool, Expr("name", Op.EQUAL, pool_name))
    if pool is None:
        raise DesignValidationError(f"no prefix pool named {pool_name!r}")
    return IpAllocator(store, pool)


def _create(store: ObjectStore, spec: PortmapSpec) -> dict:
    a_dev = _device(store, spec.a_device)
    z_dev = _device(store, spec.z_device)
    if find_bundle(store, a_dev, z_dev) is not None:
        raise DesignValidationError(
            f"a portmap already exists between {spec.a_device} and {spec.z_device}"
        )
    result = build_bundle(
        store,
        a_dev,
        z_dev,
        a_ports=PortAllocator(store, a_dev),
        z_ports=PortAllocator(store, z_dev),
        circuits=spec.circuits,
        speed_mbps=spec.speed_mbps,
        v6_alloc=_allocator(store, spec.v6_pool),
        v4_alloc=_allocator(store, spec.v4_pool) if spec.v4_pool else None,
        bgp=spec.bgp,
        local_asn=spec.local_asn,
        peer_asn=spec.peer_asn,
    )
    return {
        "operation": "create",
        "link_group": result.link_group.name,
        "circuits": [c.name for c in result.circuits],
    }


def _delete(store: ObjectStore, spec: PortmapSpec) -> dict:
    a_dev = _device(store, spec.a_device)
    z_dev = _device(store, spec.z_device)
    bundle = find_bundle(store, a_dev, z_dev)
    if bundle is None:
        raise DesignValidationError(
            f"no portmap between {spec.a_device} and {spec.z_device}"
        )
    name = bundle.name
    deleted = teardown_bundle(store, bundle)
    return {"operation": "delete", "link_group": name, "deleted": deleted}


def _update(store: ObjectStore, old: PortmapSpec, new: PortmapSpec) -> dict:
    a_dev = _device(store, new.a_device)
    z_dev = _device(store, new.z_device)
    bundle = find_bundle(store, a_dev, z_dev)
    if bundle is None:
        raise DesignValidationError(
            f"no portmap between {new.a_device} and {new.z_device} to update"
        )
    a_agg = bundle.related("a_agg_interface")
    z_agg = bundle.related("z_agg_interface")
    assert a_agg is not None and z_agg is not None
    # The bundle may have been found in the opposite orientation.
    if a_agg.device_id != a_dev.id:
        a_dev, z_dev = z_dev, a_dev
    members = store.filter(Circuit, Expr("link_group", Op.EQUAL, bundle.id))
    added: list[str] = []
    removed: list[str] = []
    if new.circuits > len(members):
        a_ports = PortAllocator(store, a_dev)
        z_ports = PortAllocator(store, z_dev)
        suffix = len(members)
        for _ in range(new.circuits - len(members)):
            a_pif = a_ports.create_interface(
                new.speed_mbps, description=f"to {z_dev.name}", agg_interface=a_agg
            )
            z_pif = z_ports.create_interface(
                new.speed_mbps, description=f"to {a_dev.name}", agg_interface=z_agg
            )
            # Member names may have gaps after deletions; find a free one.
            suffix += 1
            while store.exists(Circuit, Expr("name", Op.EQUAL, f"{bundle.name}-c{suffix}")):
                suffix += 1
            circuit = store.create(
                Circuit,
                name=f"{bundle.name}-c{suffix}",
                a_interface=a_pif,
                z_interface=z_pif,
                link_group=bundle,
                status=CircuitStatus.PROVISIONING,
                speed_mbps=new.speed_mbps,
            )
            added.append(circuit.name)
    elif new.circuits < len(members):
        for circuit in members[new.circuits :]:
            removed.append(circuit.name)
            pifs = [circuit.related("a_interface"), circuit.related("z_interface")]
            store.delete(circuit)
            for pif in pifs:
                if pif is not None:
                    store.delete(pif)
    return {
        "operation": "update",
        "link_group": bundle.name,
        "added": added,
        "removed": removed,
    }


def _migrate(store: ObjectStore, old: PortmapSpec, new: PortmapSpec) -> dict:
    """Move one endpoint of a portmap to a different device.

    Mirrors the paper's circuit-migration description: the old endpoints'
    interface, prefix, and BGP session objects are deleted or
    re-associated, and new ones are created on the target device
    (section 5.1.2).
    """
    shared = old.pair & new.pair
    if len(shared) != 1:
        raise DesignValidationError(
            "a migration must keep exactly one endpoint in place "
            f"(old {sorted(old.pair)}, new {sorted(new.pair)})"
        )
    deleted = _delete(store, old)
    created = _create(store, new)
    return {
        "operation": "migrate",
        "kept_device": next(iter(shared)),
        "old": deleted,
        "new": created,
    }


def execute_change_plan(store: ObjectStore, plan: PortmapChangePlan) -> dict:
    """Carry out one portmap change plan; returns an operation report.

    The caller (the FBNet write API) wraps this in a transaction, so a
    failed plan leaves no partial state.
    """
    operation = plan.operation
    if operation == "create":
        assert plan.new is not None
        return _create(store, plan.new)
    if operation == "delete":
        assert plan.old is not None
        return _delete(store, plan.old)
    if operation == "update":
        assert plan.old is not None and plan.new is not None
        return _update(store, plan.old, plan.new)
    assert plan.old is not None and plan.new is not None
    return _migrate(store, plan.old, plan.new)
