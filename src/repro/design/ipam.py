"""IP address management: rule-based allocation from Desired pools.

Before Desired models existed, circuit IPs were found by *pinging addresses
not present in Derived models* — slow and conflict-prone (paper section 7).
Robotron replaced that with allocators that carve subnets out of
``PrefixPool`` objects and record every assignment as a Desired prefix
object, making conflicts structurally impossible.

Point-to-point links get a /31 (IPv4) or /127 (IPv6); the two usable host
addresses are assigned to the two endpoint interfaces.  Loopbacks get a
/32 or /128.  Rack allocations carve larger blocks.
"""

from __future__ import annotations

import ipaddress

from repro.common.errors import DesignValidationError
from repro.fbnet.models import PrefixPool, V4Prefix, V6Prefix
from repro.fbnet.store import ObjectStore

__all__ = ["IpAllocator", "P2P_PLEN", "p2p_pair"]

#: Point-to-point prefix length per IP version.
P2P_PLEN = {4: 31, 6: 127}
#: Host (loopback) prefix length per IP version.
HOST_PLEN = {4: 32, 6: 128}


def p2p_pair(subnet: str) -> tuple[str, str]:
    """The two interface addresses of a point-to-point subnet.

    >>> p2p_pair("10.0.0.0/31")
    ('10.0.0.0/31', '10.0.0.1/31')
    >>> p2p_pair("2401:db00::/127")
    ('2401:db00::/127', '2401:db00::1/127')
    """
    network = ipaddress.ip_network(subnet)
    expected = P2P_PLEN[network.version]
    if network.prefixlen != expected:
        raise DesignValidationError(
            f"{subnet} is not a point-to-point /{expected}"
        )
    first = network.network_address
    second = first + 1
    return (f"{first}/{expected}", f"{second}/{expected}")


class IpAllocator:
    """Sequential-fit subnet allocator over one :class:`PrefixPool`.

    Already-assigned prefixes are discovered from the store (the Desired
    ``V4Prefix``/``V6Prefix`` objects linked to the pool), so allocators
    can be re-instantiated at any time without external bookkeeping —
    FBNet remains the single source of truth.
    """

    def __init__(self, store: ObjectStore, pool: PrefixPool):
        self._store = store
        self.pool = pool
        self._network = ipaddress.ip_network(pool.prefix)
        if self._network.version != pool.version:
            raise DesignValidationError(
                f"pool {pool.name}: prefix {pool.prefix} does not match "
                f"version {pool.version}"
            )
        # Allocation cache: loaded lazily from the store, then maintained
        # incrementally so bulk materialization stays linear.
        self._taken: list | None = None

    @property
    def version(self) -> int:
        return self._network.version

    def _prefix_model(self) -> type:
        return V4Prefix if self.version == 4 else V6Prefix

    def allocated_subnets(self) -> list[ipaddress._BaseNetwork]:
        """Subnets already carved from this pool, from Desired state.

        The two endpoint objects of a p2p pair share one subnet; the
        result is deduplicated accordingly.
        """
        taken: dict[str, ipaddress._BaseNetwork] = {}
        for obj in self._store.all(self._prefix_model()):
            if obj.pool_id != self.pool.id:
                continue
            network = ipaddress.ip_interface(obj.prefix).network
            taken[str(network)] = network
        return list(taken.values())

    def allocate_subnet(self, prefixlen: int) -> ipaddress._BaseNetwork:
        """Find the first free subnet of ``prefixlen`` within the pool.

        Raises :class:`DesignValidationError` when the pool is exhausted.
        The returned subnet is *not* yet recorded — callers record it by
        creating prefix objects (see :meth:`assign_p2p`).
        """
        if prefixlen < self._network.prefixlen:
            raise DesignValidationError(
                f"/{prefixlen} is larger than pool {self.pool.name} "
                f"({self._network})"
            )
        if self._taken is None:
            self._taken = self.allocated_subnets()
        taken = self._taken
        # Start past the highest allocated block (sequential-fit fast path);
        # fall back to a scan from the pool base if that lands out of range.
        start = int(self._network.network_address)
        max_broadcast = -1
        if taken:
            max_broadcast = max(int(t.broadcast_address) for t in taken)
            start = max(start, max_broadcast + 1)
        block = 2 ** (self._network.max_prefixlen - prefixlen)
        if start % block:
            start += block - (start % block)
        wrapped = False
        if start + block - 1 > int(self._network.broadcast_address):
            start = int(self._network.network_address)
            wrapped = True
        candidate = ipaddress.ip_network(
            f"{ipaddress.ip_address(start)}/{prefixlen}"
        )
        if not wrapped and int(candidate.network_address) > max_broadcast:
            # Beyond every existing block: no overlap scan needed.
            taken.append(candidate)
            return candidate
        while True:
            if not candidate.subnet_of(self._network):
                raise DesignValidationError(
                    f"pool {self.pool.name} ({self._network}) is exhausted"
                )
            if not any(candidate.overlaps(existing) for existing in taken):
                taken.append(candidate)
                return candidate
            # Jump past the end of this candidate block.
            next_address = int(candidate.broadcast_address) + 1
            max_address = int(self._network.broadcast_address)
            if next_address > max_address:
                raise DesignValidationError(
                    f"pool {self.pool.name} ({self._network}) is exhausted"
                )
            candidate = ipaddress.ip_network(
                f"{ipaddress.ip_address(next_address)}/{prefixlen}"
            )

    def assign_p2p(self, a_interface, z_interface) -> tuple:
        """Allocate a point-to-point subnet and assign both endpoint addresses.

        Creates two prefix objects — one per endpoint interface — from the
        same /31 or /127, satisfying the validation rule that both ends of
        a circuit share a subnet (section 1's motivating example).
        Returns the two created prefix objects ``(a, z)``.
        """
        subnet = self.allocate_subnet(P2P_PLEN[self.version])
        a_addr, z_addr = p2p_pair(str(subnet))
        model = self._prefix_model()
        a = self._store.create(model, prefix=a_addr, interface=a_interface, pool=self.pool)
        z = self._store.create(model, prefix=z_addr, interface=z_interface, pool=self.pool)
        return a, z

    def assign_host(self, interface) -> object:
        """Allocate a single host address (/32 or /128) to ``interface``."""
        subnet = self.allocate_subnet(HOST_PLEN[self.version])
        model = self._prefix_model()
        return self._store.create(
            model,
            prefix=f"{subnet.network_address}/{subnet.prefixlen}",
            interface=interface,
            pool=self.pool,
        )

    def utilization(self) -> float:
        """Fraction of the pool's address space already allocated."""
        total = self._network.num_addresses
        used = sum(subnet.num_addresses for subnet in self.allocated_subnets())
        return used / total
