"""Serializing concurrent design changes (paper section 8, "Stale Configs").

The paper leaves this open: "How to serialize concurrent design changes,
resolve design conflicts, and leverage the Derived network state to
ensure change safety remains an open problem" — noting that at scale,
lock-based multi-writer coordination is hard (their reference is
Statesman's conflict-resolution ideas).

This module implements the optimistic scheme the discussion points
toward.  Engineers *propose* changes against a snapshot of FBNet (the
journal position they read).  At commit time the coordinator replays the
journal since that base position; if any object the proposal touches was
concurrently modified, the commit is rejected with a conflict report and
the engineer rebases — no locks, no lost updates, and the stale-config
incident of section 8 (Engineer A deploying over Engineer B's change)
becomes structurally impossible at the design layer.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.common.errors import DesignValidationError, RobotronError
from repro.design.changes import ChangeSummary, summarize_journal
from repro.fbnet.store import ObjectStore

__all__ = ["ChangeCoordinator", "ChangeProposal", "DesignConflict"]


class DesignConflict(RobotronError):
    """A proposal lost the race: its objects changed under it."""

    def __init__(self, message: str, conflicts: list[str]):
        super().__init__(message)
        self.conflicts = conflicts


@dataclass
class ChangeProposal:
    """One engineer's pending design change.

    ``mutate`` is the design-tool work, deferred until commit so it
    always runs against current state; ``touches`` declares the object
    identities ((model, id) pairs) the change depends on — anything it
    will modify, delete, or derive data from.  New objects the change
    will create need not be declared.
    """

    proposal_id: int
    employee_id: str
    ticket_id: str
    description: str
    base_position: int
    touches: frozenset[tuple[str, int]]
    mutate: Callable[[ObjectStore], None]
    #: Filled in on successful commit.
    summary: ChangeSummary | None = None
    committed_at_position: int | None = None


class ChangeCoordinator:
    """Optimistic concurrency control over one FBNet store."""

    def __init__(self, store: ObjectStore):
        self._store = store
        self._next_id = 1
        #: (time-ordered) committed proposals, for audit.
        self.committed: list[ChangeProposal] = []
        #: Rejected proposals with their conflict reports.
        self.rejected: list[tuple[ChangeProposal, list[str]]] = []

    def propose(
        self,
        *,
        employee_id: str,
        ticket_id: str,
        description: str,
        touches: set[tuple[str, int]],
        mutate: Callable[[ObjectStore], None],
    ) -> ChangeProposal:
        """Open a proposal against the store's current snapshot."""
        if not employee_id or not ticket_id:
            raise DesignValidationError(
                "design changes require an employee id and a ticket id"
            )
        proposal = ChangeProposal(
            proposal_id=self._next_id,
            employee_id=employee_id,
            ticket_id=ticket_id,
            description=description,
            base_position=self._store.journal_position,
            touches=frozenset(touches),
            mutate=mutate,
        )
        self._next_id += 1
        return proposal

    def conflicts_for(self, proposal: ChangeProposal) -> list[str]:
        """What changed under the proposal since its base snapshot."""
        conflicts = []
        for record in self._store.journal_since(proposal.base_position):
            key = (record.model, record.obj_id)
            if key in proposal.touches:
                conflicts.append(
                    f"{record.model} id={record.obj_id} was {record.op.value}d "
                    "after the proposal's base snapshot"
                )
        return conflicts

    def commit(self, proposal: ChangeProposal) -> ChangeSummary:
        """Validate-then-apply: reject on conflict, else run atomically."""
        conflicts = self.conflicts_for(proposal)
        if conflicts:
            self.rejected.append((proposal, conflicts))
            raise DesignConflict(
                f"proposal {proposal.proposal_id} ({proposal.description!r}) "
                f"conflicts with {len(conflicts)} concurrent change(s); rebase",
                conflicts,
            )
        start = self._store.journal_position
        with self._store.transaction():
            proposal.mutate(self._store)
        proposal.summary = summarize_journal(self._store.journal_since(start))
        proposal.committed_at_position = self._store.journal_position
        self.committed.append(proposal)
        return proposal.summary

    def rebase(self, proposal: ChangeProposal) -> ChangeProposal:
        """A fresh proposal with the same work against the current state."""
        return self.propose(
            employee_id=proposal.employee_id,
            ticket_id=proposal.ticket_id,
            description=proposal.description,
            touches=set(proposal.touches),
            mutate=proposal.mutate,
        )
