"""Peering and transit turn-up (paper sections 2.1 and 8).

"Provisioning new peering or transit circuits" is one of the paper's
common POP tasks, and the section-8 incident — an ISP session turned up
with a cherry-picked-prefix import policy that wasn't fully supported —
is its cautionary tale.  The tool provides the high-level primitive:

* allocate the interconnect addressing on the PR,
* model the external AS, the peer organization, and the session
  (``peer_device`` is null — the far end is not ours),
* attach the optional import policy,
* and record the ``PeeringLink``.

The companion design rule flags external sessions that lack an import
policy — the check that would have confined the war story.
"""

from __future__ import annotations

import ipaddress

from repro.common.errors import DesignValidationError
from repro.fbnet.base import Model
from repro.fbnet.models import (
    AutonomousSystem,
    BgpSessionType,
    BgpV6Session,
    IspPeer,
    PeeringLink,
    PeeringRouter,
    Pop,
    PrefixPool,
    RoutePolicy,
)
from repro.fbnet.query import Expr, Op
from repro.fbnet.store import ObjectStore
from repro.design.ipam import IpAllocator
from repro.design.materializer import PortAllocator

__all__ = ["PeeringDesignTool", "rule_external_sessions_have_import_policy"]


def rule_external_sessions_have_import_policy(store: ObjectStore) -> list[str]:
    """External eBGP sessions should carry an import policy.

    Not in the default rule set — it is the "latest design requirement"
    of section 8, the kind of rule Robotron grows after an incident.
    """
    violations = []
    for session in store.all(BgpV6Session):
        if session.session_type is not BgpSessionType.EBGP:
            continue
        if session.peer_device_id is not None:
            continue  # internal fabric eBGP, both ends ours
        if session.import_policy_id is None:
            device = session.related("device")
            violations.append(
                f"external session {device.name}->{session.peer_ip} "
                "(AS{}) has no import policy".format(session.peer_asn)
            )
    return violations


class PeeringDesignTool:
    """High-level primitives for peering/transit interconnects."""

    def __init__(
        self,
        store: ObjectStore,
        *,
        local_asn: int = 32934,
        interconnect_pool: str = "pop-p2p-v6",
    ):
        self._store = store
        self.local_asn = local_asn
        self.interconnect_pool = interconnect_pool

    # ------------------------------------------------------------------
    # Policies
    # ------------------------------------------------------------------

    def create_import_policy(
        self, name: str, prefixes: list[str], *, description: str = ""
    ) -> RoutePolicy:
        """A cherry-picked-prefix import policy (validated CIDRs)."""
        for prefix in prefixes:
            try:
                ipaddress.ip_network(prefix)
            except ValueError as exc:
                raise DesignValidationError(
                    f"policy {name}: bad prefix {prefix!r}: {exc}"
                ) from None
        return self._store.create(
            RoutePolicy, name=name, prefixes=list(prefixes),
            description=description,
        )

    # ------------------------------------------------------------------
    # Turn-up / turn-down
    # ------------------------------------------------------------------

    def turn_up(
        self,
        router: Model,
        isp_name: str,
        peer_asn: int,
        *,
        kind: str = "peering",
        import_policy: RoutePolicy | None = None,
    ) -> PeeringLink:
        """Provision one peering/transit interconnect on a PR.

        Allocates a /127, puts our side on a fresh PR interface, models
        the ISP's AS + organization, and creates the external session.
        """
        if not isinstance(router, PeeringRouter):
            raise DesignValidationError(
                f"interconnects terminate on PeeringRouters, not "
                f"{type(router).__name__}"
            )
        if kind not in ("peering", "transit"):
            raise DesignValidationError(f"kind must be peering/transit, not {kind!r}")
        pop = router.related("pop")
        assert isinstance(pop, Pop)
        pool = self._store.first(
            PrefixPool, Expr("name", Op.EQUAL, self.interconnect_pool)
        )
        if pool is None:
            raise DesignValidationError(
                f"no prefix pool named {self.interconnect_pool!r}"
            )

        with self._store.transaction():
            asn = self._store.first(
                AutonomousSystem, Expr("asn", Op.EQUAL, peer_asn)
            ) or self._store.create(AutonomousSystem, asn=peer_asn, name=isp_name)
            peer = self._store.first(
                IspPeer, Expr("name", Op.EQUAL, isp_name)
            ) or self._store.create(IspPeer, name=isp_name, autonomous_system=asn)

            # Our side of the interconnect: a dedicated PR interface with
            # one half of a fresh /127; the ISP configures the other half.
            ports = PortAllocator(self._store, router)
            from repro.fbnet.models import AggregatedInterface
            from repro.design.bundles import next_agg_number

            number = next_agg_number(self._store, router)
            agg = self._store.create(
                AggregatedInterface,
                name=f"ae{number}",
                device=router,
                number=number,
                description=f"{kind} to {isp_name}",
            )
            ports.create_interface(
                100_000, description=f"{kind} to {isp_name}", agg_interface=agg
            )
            allocator = IpAllocator(self._store, pool)
            subnet = allocator.allocate_subnet(127)
            our_ip = str(subnet.network_address)
            their_ip = str(subnet.network_address + 1)
            from repro.fbnet.models import V6Prefix

            self._store.create(
                V6Prefix, prefix=f"{our_ip}/127", interface=agg, pool=pool
            )

            session = self._store.create(
                BgpV6Session,
                device=router,
                peer_device=None,  # the far end belongs to the ISP
                session_type=BgpSessionType.EBGP,
                local_asn=self.local_asn,
                peer_asn=peer_asn,
                local_ip=our_ip,
                peer_ip=their_ip,
                description=f"{kind} {isp_name} AS{peer_asn}",
                import_policy=import_policy,
            )
            return self._store.create(
                PeeringLink,
                isp_peer=peer,
                pop=pop,
                bgp_session=session,
                kind=kind,
            )

    def turn_down(self, link: PeeringLink) -> None:
        """Remove an interconnect: session, addressing, interface, link."""
        with self._store.transaction():
            session = link.related("bgp_session")
            self._store.delete(link)
            if session is None:
                return
            device = session.related("device")
            local_ip = session.local_ip
            self._store.delete(session)
            # The dedicated interconnect interface and its prefix.
            from repro.fbnet.models import (
                AggregatedInterface,
                PhysicalInterface,
                V6Prefix,
            )

            for agg in self._store.filter(
                AggregatedInterface, Expr("device", Op.EQUAL, device.id)
            ):
                prefixes = self._store.filter(
                    V6Prefix, Expr("interface", Op.EQUAL, agg.id)
                )
                if any(p.prefix.split("/")[0] == local_ip for p in prefixes):
                    for pif in self._store.filter(
                        PhysicalInterface, Expr("agg_interface", Op.EQUAL, agg.id)
                    ):
                        self._store.delete(pif)
                    self._store.delete(agg)  # cascades the prefixes
                    break
