"""Topology templates (paper section 5.1.1, Figure 7).

POPs and DCs have standard fat-tree architectures that rarely change after
initial turn-up, so their designs are captured as *topology templates*.  A
template defines:

1. the device groups' hardware profiles (vendor, linecards, reserved
   interfaces),
2. how many devices of each type the cluster has,
3. how device groups are connected — link groups with a bundle of N
   parallel circuits per device pair,
4. the IP addressing scheme (which pools supply p2p and loopback space,
   and whether the cluster is v4+v6 or v6-only).

Templates are plain data; :mod:`repro.design.materializer` turns them into
FBNet objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import DesignValidationError
from repro.fbnet.models import BgpSessionType

__all__ = [
    "DeviceGroupSpec",
    "IpSchemeSpec",
    "LinkGroupSpec",
    "TopologyTemplate",
]


@dataclass(frozen=True)
class DeviceGroupSpec:
    """One group of same-role devices, e.g. "4 PSWs of profile Switch_Vendor2".

    ``model_name`` is the FBNet device model to instantiate
    (``"NetworkSwitch"``, ``"PeeringRouter"``, ...); ``count`` how many;
    ``hardware_profile`` the profile name (must exist in FBNet);
    ``name_prefix`` the per-device hostname stem (devices are numbered
    from 1: ``psw1..psw4``).
    """

    group: str
    model_name: str
    count: int
    hardware_profile: str
    name_prefix: str
    local_asn: int | None = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise DesignValidationError(f"device group {self.group}: count must be >= 1")


@dataclass(frozen=True)
class LinkGroupSpec:
    """How two device groups interconnect.

    Every (a-device, z-device) pair across the two groups is connected by
    a bundle of ``circuits_per_bundle`` parallel circuits, aggregated with
    LACP on both sides (Figure 4).  ``bgp`` optionally establishes a BGP
    session per pair over the bundle.
    """

    a_group: str
    z_group: str
    circuits_per_bundle: int = 2
    circuit_speed_mbps: int = 10_000
    bgp: BgpSessionType | None = BgpSessionType.EBGP

    def __post_init__(self) -> None:
        if self.circuits_per_bundle < 1:
            raise DesignValidationError(
                f"link group {self.a_group}--{self.z_group}: needs >= 1 circuit"
            )
        if self.a_group == self.z_group:
            raise DesignValidationError(
                f"link group {self.a_group}--{self.z_group}: groups must differ"
            )


@dataclass(frozen=True)
class IpSchemeSpec:
    """Which prefix pools supply the cluster's addressing.

    ``v4_pool`` is None for v6-only clusters (the paper's Gen3 DC
    clusters, built after private IPv4 exhaustion).
    """

    v6_pool: str
    v4_pool: str | None = None
    loopback_v6_pool: str | None = None

    @property
    def v6_only(self) -> bool:
        return self.v4_pool is None


@dataclass(frozen=True)
class TopologyTemplate:
    """A complete cluster topology template (Figure 7)."""

    name: str
    device_groups: tuple[DeviceGroupSpec, ...]
    link_groups: tuple[LinkGroupSpec, ...]
    ip_scheme: IpSchemeSpec

    def __post_init__(self) -> None:
        names = [g.group for g in self.device_groups]
        if len(set(names)) != len(names):
            raise DesignValidationError(f"template {self.name}: duplicate group names")
        known = set(names)
        for link in self.link_groups:
            for side in (link.a_group, link.z_group):
                if side not in known:
                    raise DesignValidationError(
                        f"template {self.name}: link group references unknown "
                        f"device group {side!r}"
                    )

    def group(self, name: str) -> DeviceGroupSpec:
        for spec in self.device_groups:
            if spec.group == name:
                return spec
        raise KeyError(f"template {self.name} has no device group {name!r}")

    def device_count(self) -> int:
        return sum(g.count for g in self.device_groups)

    def bundle_count(self) -> int:
        """Number of (a, z) device pairs — one bundle per pair."""
        total = 0
        for link in self.link_groups:
            total += self.group(link.a_group).count * self.group(link.z_group).count
        return total


def four_post_pop_template(
    *,
    pr_profile: str = "Router_Vendor1",
    psw_profile: str = "Switch_Vendor2",
    v6_pool: str = "pop-p2p-v6",
    v4_pool: str | None = None,
    pr_asn: int = 65501,
    psw_asn: int = 65101,
) -> TopologyTemplate:
    """The paper's running example: a 4-post POP cluster (Figures 2 and 7).

    Two PRs and four PSWs; each (PR, PSW) pair is connected by a 20G
    bundle of two 10G circuits, with an eBGP session over the bundle.
    """
    return TopologyTemplate(
        name="pop-4post",
        device_groups=(
            DeviceGroupSpec(
                group="PR",
                model_name="PeeringRouter",
                count=2,
                hardware_profile=pr_profile,
                name_prefix="pr",
                local_asn=pr_asn,
            ),
            DeviceGroupSpec(
                group="PSW",
                model_name="NetworkSwitch",
                count=4,
                hardware_profile=psw_profile,
                name_prefix="psw",
                local_asn=psw_asn,
            ),
        ),
        link_groups=(
            LinkGroupSpec(
                a_group="PSW",
                z_group="PR",
                circuits_per_bundle=2,
                circuit_speed_mbps=10_000,
                bgp=BgpSessionType.EBGP,
            ),
        ),
        ip_scheme=IpSchemeSpec(v6_pool=v6_pool, v4_pool=v4_pool),
    )
