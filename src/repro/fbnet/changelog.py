"""Change propagation over the FBNet journal: read-sets and the ChangeLog.

The store's journal (:class:`~repro.fbnet.store.ChangeRecord`) has always
recorded *what changed*; this module turns it into a propagation layer by
also capturing *who read what*.  A :class:`ReadSet` records the objects,
indexed lookups, and model scans one computation performed (the store
fills it in while a :meth:`~repro.fbnet.store.ObjectStore.track_reads`
block is active), and can then decide whether a later journal record
invalidates that computation.  The :class:`ChangeLog` is the query facade
over the journal itself: per-model and per-object lookup since a
position.

Together they power incremental config generation (paper section 5.3/8:
regenerating tens of thousands of devices from scratch is both too slow
and the root cause of the "stale configs" outage): each generated config
carries the read-set of its derivation, and
``ConfigGenerator.regenerate_dirty()`` maps journal records to the
configs they invalidate instead of regenerating the world.

Dependency kinds, from most to least precise:

* **object** ``(model, id)`` — a ``get()``/``related()`` resolution;
  matches records for exactly that object.
* **field** ``(model, field, values)`` — an equality lookup (FK reverse
  edge, unique index, or an analyzable equality query); matches records
  whose post-change value for ``field`` is in ``values`` — or, for
  updates, records where ``field`` itself changed (the old value may
  have matched, e.g. an interface moving between devices must dirty both
  ends).
* **model** ``(model,)`` — a full scan or unanalyzable query; matches
  every record of the model or its subclasses.  Conservative but always
  correct: the equivalence guarantee (incremental ≡ full) rests on each
  fallback being a superset of the true dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any, Iterable

from repro.fbnet.base import model_registry
from repro.fbnet.query import And, Expr, Op, Or, Query

if TYPE_CHECKING:
    from repro.fbnet.base import Model
    from repro.fbnet.store import ChangeRecord, ObjectStore

__all__ = ["ChangeLog", "ReadSet", "equality_dependencies", "query_models"]


#: model name -> that model's family names (itself + every Model ancestor),
#: so deps recorded against an abstract base (e.g. ``Device``) match records
#: of its concrete subclasses (e.g. ``PeeringRouter``).
_FAMILY_CACHE: dict[str, tuple[str, ...]] = {}


def _family(model_name: str) -> tuple[str, ...]:
    cached = _FAMILY_CACHE.get(model_name)
    if cached is not None:
        return cached
    try:
        cls = model_registry.get(model_name)
    except KeyError:
        family: tuple[str, ...] = (model_name,)
    else:
        family = tuple(
            klass.__name__
            for klass in cls.__mro__
            if getattr(klass, "_meta", None) is not None
            and klass.__name__ != "Model"
        )
    _FAMILY_CACHE[model_name] = family
    return family


def _norm(value: Any) -> Any:
    """Normalize a value for dependency comparison (mirrors index hashing)."""
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, (list, dict, set)):
        return repr(value)
    return value


def equality_dependencies(query: Query) -> list[tuple[str, tuple[Any, ...]]] | None:
    """Decompose ``query`` into ``(field, values)`` equality dependencies.

    Returns ``None`` when the query cannot be reduced to local-field
    equality tests (dotted paths, ordered/regex/null operators, ``Not``)
    — the caller must then fall back to a model-level dependency.

    ``And`` only needs one analyzable child: its result set is a subset
    of that child's matches, and any record that could change membership
    either matches the child's values (new state matches) or changed the
    child's field (old state matched).  ``Or`` needs *every* child
    analyzable, since a record may affect membership through any branch.
    """
    if isinstance(query, Expr):
        if query.op is not Op.EQUAL or "." in query.field:
            return None
        return [(query.field, tuple(_norm(v) for v in query.rvalues))]
    if isinstance(query, Or):
        deps: list[tuple[str, tuple[Any, ...]]] = []
        for child in query.children:
            child_deps = equality_dependencies(child)
            if child_deps is None:
                return None
            deps.extend(child_deps)
        return deps
    if isinstance(query, And):
        for child in query.children:
            child_deps = equality_dependencies(child)
            if child_deps is not None:
                return child_deps
        return None
    return None


def _iter_exprs(query: Query) -> Iterable[Expr]:
    if isinstance(query, Expr):
        yield query
    elif isinstance(query, (And, Or)):
        for child in query.children:
            yield from _iter_exprs(child)
    else:  # Not
        child = getattr(query, "child", None)
        if child is not None:
            yield from _iter_exprs(child)


def query_models(model: type[Model], query: Query) -> set[str]:
    """Every model name an unanalyzable ``query`` could depend on.

    The conservative fallback for a query the equality analyzer rejects:
    the queried model itself, plus — for dotted paths — every model the
    path traverses, since membership also changes when a *traversed*
    object mutates (e.g. ``pop.name == "x"`` depends on Pop records, not
    just the queried device records).
    """
    from repro.fbnet.fields import ForeignKey

    names = {model.__name__}
    for expr in _iter_exprs(query):
        current: list[type] = [model]
        for part in expr.field.split("."):
            next_models: list[type] = []
            for klass in current:
                meta = getattr(klass, "_meta", None)
                if meta is None or part == "id":
                    continue
                fk = meta.fields.get(part)
                if isinstance(fk, ForeignKey):
                    names.add(fk.to.__name__)
                    next_models.append(fk.to)
                    continue
                if fk is not None:
                    continue  # value field: terminal, no hop
                reverse = model_registry.reverse_relations(klass)
                if part in reverse:
                    source_model, _fk_name = reverse[part]
                    names.add(source_model.__name__)
                    next_models.append(source_model)
            current = next_models
            if not current:
                break
    return names


@dataclass
class ReadSet:
    """Everything one computation read from an :class:`ObjectStore`.

    Filled in by the store while a ``track_reads`` block is active;
    afterwards :meth:`matches` answers "does this journal record
    invalidate the computation?" in O(record fields).
    """

    #: Model names read via full scans / unanalyzable queries.
    models: set[str] = field(default_factory=set)
    #: ``(model, id)`` pairs read individually.
    objects: set[tuple[str, int]] = field(default_factory=set)
    #: ``model -> field -> normalized values`` equality lookups.
    fields: dict[str, dict[str, set[Any]]] = field(default_factory=dict)

    # -- recording (called by the store) ------------------------------------

    def add_model(self, model_name: str) -> None:
        self.models.add(model_name)

    def add_object(self, model_name: str, obj_id: int) -> None:
        self.objects.add((model_name, obj_id))

    def add_field(self, model_name: str, field_name: str, values: Iterable[Any]) -> None:
        bucket = self.fields.setdefault(model_name, {}).setdefault(field_name, set())
        for value in values:
            bucket.add(_norm(value))

    def merge(self, other: ReadSet) -> None:
        self.models |= other.models
        self.objects |= other.objects
        for model_name, per_field in other.fields.items():
            for field_name, values in per_field.items():
                self.add_field(model_name, field_name, values)

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return (
            len(self.models)
            + len(self.objects)
            + sum(len(v) for per in self.fields.values() for v in per.values())
        )

    def __bool__(self) -> bool:
        return len(self) > 0

    # -- invalidation -------------------------------------------------------

    def matches(self, record: ChangeRecord) -> bool:
        """Whether ``record`` could change what this computation read."""
        family = _family(record.model)
        if self.models and not self.models.isdisjoint(family):
            return True
        if self.objects:
            for name in family:
                if (name, record.obj_id) in self.objects:
                    return True
        if self.fields:
            changed = record.changed_fields
            for name in family:
                per_field = self.fields.get(name)
                if not per_field:
                    continue
                for field_name, values in per_field.items():
                    if field_name in changed:
                        # The field itself changed: the *old* value may
                        # have matched even though the new one does not.
                        return True
                    if _norm(record.values.get(field_name)) in values:
                        return True
        return False

    def first_match(self, records: Iterable[ChangeRecord]) -> ChangeRecord | None:
        """The first record in ``records`` that invalidates this read-set."""
        for record in records:
            if self.matches(record):
                return record
        return None


class ChangeLog:
    """Query facade over one store's committed change journal.

    The store exposes the raw journal as a list; this facade adds the
    per-model / per-object lookups the propagation layer needs, all
    anchored at a *position* (``store.journal_position`` at some earlier
    moment) so callers only ever see the delta they have not processed.
    """

    def __init__(self, store: ObjectStore):
        self._store = store

    @property
    def position(self) -> int:
        """The current journal position (records committed so far)."""
        return self._store.journal_position

    def since(self, position: int) -> list[ChangeRecord]:
        """All records committed at or after ``position``, in order."""
        return self._store.journal_since(position)

    def for_model(
        self, model: type[Model] | str, since: int = 0
    ) -> list[ChangeRecord]:
        """Records touching ``model`` (or any subclass) since ``position``."""
        name = model if isinstance(model, str) else model.__name__
        return [
            record
            for record in self.since(since)
            if name in _family(record.model)
        ]

    def for_object(
        self, model: type[Model] | str, obj_id: int, since: int = 0
    ) -> list[ChangeRecord]:
        """Records touching one object since ``position``."""
        name = model if isinstance(model, str) else model.__name__
        return [
            record
            for record in self.since(since)
            if record.obj_id == obj_id and name in _family(record.model)
        ]

    def for_change(self, change_id: str, since: int = 0) -> list[ChangeRecord]:
        """Records stamped with one flight-recorder change id.

        The journal-side half of provenance: given a change id from the
        flight log, this returns exactly the rows that change wrote.
        """
        return [
            record
            for record in self.since(since)
            if record.change_id == change_id
        ]

    def models_changed(self, since: int = 0) -> set[str]:
        """The concrete model names with at least one record since ``position``."""
        return {record.model for record in self.since(since)}

    def shards(self) -> dict[str, ChangeLog]:
        """Per-partition change logs, keyed by shard key.

        A sharded store journals twice: globally on the router (what this
        facade normally reads) and per partition on each shard.  The
        per-shard views let consumers that only care about one region's
        changes — e.g. a regional config sweep — skip the rest of the
        journal.  Empty for a single store.
        """
        partitions = getattr(self._store, "shards", None)
        if not partitions:
            return {}
        return {shard.shard_key: ChangeLog(shard) for shard in partitions}
