"""FBNet: the vendor-agnostic, network-wide object store (paper section 4).

FBNet is Robotron's *single source of truth*.  Every network component —
physical (devices, linecards, interfaces, circuits) and logical (BGP
sessions, IP prefixes) — is modeled as a typed object with *value fields*
(component data) and *relationship fields* (typed references to other
objects).

The package provides, mirroring the paper:

* :mod:`repro.fbnet.fields` — value field types with per-field validation
  (the ``V6PrefixField`` of Figure 6 lives here).
* :mod:`repro.fbnet.base` — the ``Model`` metaclass and model registry
  (our stand-in for the Django ORM layer).
* :mod:`repro.fbnet.models` — the concrete Desired and Derived models.
* :mod:`repro.fbnet.query` — the ``<field> <op> <rvalue>`` query AST of
  the read APIs (section 4.2.1).
* :mod:`repro.fbnet.store` — the transactional object store.
* :mod:`repro.fbnet.api` — read/write API services (section 4.2).
* :mod:`repro.fbnet.rpc` — the Thrift-like service layer (section 4.3.2).
* :mod:`repro.fbnet.replication` — master/replica replication, failover,
  and service-replica redirection (section 4.3.3).
* :mod:`repro.fbnet.durability` — write-ahead log, snapshots, and
  crash-consistent recovery (the durable MySQL master of section 4.3.1).
"""

from repro.fbnet.base import Model, ModelGroup, model_registry
from repro.fbnet.changelog import ChangeLog, ReadSet
from repro.fbnet.query import And, Expr, Not, Op, Or, Query
from repro.fbnet.rpc import CachingReadService, ReadCache
from repro.fbnet.sharding import ShardAssignment, ShardedObjectStore
from repro.fbnet.store import ObjectStore

# Importing the models package registers every concrete model, so that the
# registry-driven APIs (read API, RPC schema, replication apply) work no
# matter which entry point a caller used.
from repro.fbnet import models as _models  # noqa: E402,F401  (registration side effect)

__all__ = [
    "And",
    "CachingReadService",
    "ChangeLog",
    "Expr",
    "Model",
    "ModelGroup",
    "Not",
    "ObjectStore",
    "Op",
    "Or",
    "Query",
    "ReadCache",
    "ReadSet",
    "ShardAssignment",
    "ShardedObjectStore",
    "model_registry",
]
