"""Design-change history model (paper section 5.1.3).

Robotron requires an employee id and a ticket id for every design change
and logs all changes for debugging and error tracking.  Each committed
design change produces one ``DesignChangeEntry`` recording what it touched;
the Figure 15 analysis is computed over these entries.
"""

from __future__ import annotations

from repro.fbnet.base import Model, ModelGroup
from repro.fbnet.fields import CharField, DateTimeField, IntField, JSONField

__all__ = ["DesignChangeEntry"]


class DesignChangeEntry(Model):
    """An audit-log row for one committed design change."""

    class Meta:
        group = ModelGroup.DESIRED

    employee_id = CharField(help_text="Who made the change.")
    ticket_id = CharField(help_text="The tracking ticket authorizing it.")
    description = CharField(default="", max_length=512)
    domain = CharField(help_text="'pop', 'datacenter', or 'backbone'.")
    committed_at = DateTimeField(default=0.0)
    created_count = IntField(default=0, min_value=0)
    modified_count = IntField(default=0, min_value=0)
    deleted_count = IntField(default=0, min_value=0)
    #: Per-model-type breakdown: {"Circuit": {"created": 2, ...}, ...}
    per_type_counts = JSONField(default=dict)
