"""Firewall policy models (paper sections 1 and 5.3.2).

"Access control list modification" is one of the paper's everyday
management tasks, and firewall rule changes are its canonical example of
a deployment that must roll out in phases.  A ``FirewallPolicy`` applies
to every device of a role; its ordered ``AclRule`` objects compile into
each vendor's ACL syntax during config generation.
"""

from __future__ import annotations

from enum import Enum

from repro.fbnet.base import Model, ModelGroup
from repro.fbnet.fields import CharField, EnumField, ForeignKey, IntField, OnDelete
from repro.fbnet.models.enums import DeviceRole

__all__ = ["AclAction", "AclRule", "FirewallPolicy"]


class AclAction(Enum):
    """What a matching packet receives."""

    PERMIT = "permit"
    DENY = "deny"


class FirewallPolicy(Model):
    """A named ACL applied to every device of one role."""

    class Meta:
        group = ModelGroup.DESIRED

    name = CharField(unique=True, help_text="Policy name, e.g. 'edge-in'.")
    applies_to_role = EnumField(DeviceRole)
    description = CharField(default="")


class AclRule(Model):
    """One ordered rule within a policy."""

    class Meta:
        group = ModelGroup.DESIRED
        unique_together = (("policy", "sequence"),)

    policy = ForeignKey(FirewallPolicy, on_delete=OnDelete.CASCADE)
    sequence = IntField(min_value=1, help_text="Evaluation order within the policy.")
    action = EnumField(AclAction)
    protocol = CharField(default="any", help_text="'tcp', 'udp', 'icmp6', or 'any'.")
    source = CharField(default="any", help_text="Source prefix or 'any'.")
    destination = CharField(default="any", help_text="Destination prefix or 'any'.")
    port = IntField(null=True, min_value=1, max_value=65535)
    description = CharField(default="")
