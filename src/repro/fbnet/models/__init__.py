"""Concrete FBNet models (paper section 4.1).

The models are partitioned into the *Desired* group — the planned network
state written by Robotron's design tools — and the *Derived* group — the
observed state populated from device collection (section 4.1.2).  The paper
reports over 250 models in production; this reproduction ships the core set
covering devices, interfaces, circuits, addressing, routing, locations,
clusters, and their Derived twins.
"""

from repro.fbnet.models.enums import (
    AdminStatus,
    BgpSessionType,
    CircuitStatus,
    ClusterGeneration,
    ClusterStatus,
    DeploymentOutcome,
    DeviceRole,
    DeviceStatus,
    DrainState,
    EventSeverity,
    NetworkDomain,
    OperStatus,
    Vendor,
)
from repro.fbnet.models.location import (
    BackboneSite,
    Cluster,
    Datacenter,
    Location,
    Pop,
    Rack,
    RackProfile,
    Region,
)
from repro.fbnet.models.hardware import HardwareProfile, LinecardModel
from repro.fbnet.models.device import (
    BackboneRouter,
    DatacenterRouter,
    Device,
    NetworkSwitch,
    PeeringRouter,
    RackSwitch,
)
from repro.fbnet.models.interface import (
    AggregatedInterface,
    Interface,
    Linecard,
    LoopbackInterface,
    PhysicalInterface,
)
from repro.fbnet.models.circuit import Circuit, LinkGroup
from repro.fbnet.models.prefix import Prefix, PrefixPool, V4Prefix, V6Prefix
from repro.fbnet.models.routing import (
    AutonomousSystem,
    BgpSession,
    BgpV4Session,
    BgpV6Session,
    MplsTunnel,
    RoutePolicy,
)
from repro.fbnet.models.change import DesignChangeEntry
from repro.fbnet.models.deployment import DeploymentRecord
from repro.fbnet.models.firewall import AclAction, AclRule, FirewallPolicy
from repro.fbnet.models.extras import (
    AsnAllocation,
    ConsoleServer,
    DrainEvent,
    IspPeer,
    MaintenanceWindow,
    OpticalChannel,
    OpticalSpan,
    PeeringLink,
    PowerFeed,
)
from repro.fbnet.models.derived import (
    DerivedBgpSession,
    DerivedCircuit,
    DerivedDevice,
    DerivedInterface,
    DerivedRunningConfig,
    OperationalEvent,
)

__all__ = [
    "AdminStatus",
    "AclAction",
    "AclRule",
    "AsnAllocation",
    "AggregatedInterface",
    "AutonomousSystem",
    "BackboneRouter",
    "BackboneSite",
    "BgpSession",
    "BgpSessionType",
    "BgpV4Session",
    "BgpV6Session",
    "Circuit",
    "ConsoleServer",
    "CircuitStatus",
    "Cluster",
    "ClusterGeneration",
    "ClusterStatus",
    "Datacenter",
    "DatacenterRouter",
    "DerivedBgpSession",
    "DerivedCircuit",
    "DerivedDevice",
    "DerivedInterface",
    "DerivedRunningConfig",
    "DesignChangeEntry",
    "DeploymentOutcome",
    "DeploymentRecord",
    "Device",
    "DeviceRole",
    "DeviceStatus",
    "DrainEvent",
    "DrainState",
    "EventSeverity",
    "FirewallPolicy",
    "HardwareProfile",
    "Interface",
    "IspPeer",
    "MaintenanceWindow",
    "Linecard",
    "LinecardModel",
    "LinkGroup",
    "Location",
    "LoopbackInterface",
    "MplsTunnel",
    "NetworkDomain",
    "OpticalChannel",
    "OpticalSpan",
    "NetworkSwitch",
    "OperStatus",
    "OperationalEvent",
    "PeeringLink",
    "PeeringRouter",
    "PhysicalInterface",
    "Pop",
    "PowerFeed",
    "Prefix",
    "PrefixPool",
    "Rack",
    "RackProfile",
    "Region",
    "RoutePolicy",
    "V4Prefix",
    "V6Prefix",
    "Vendor",
]
