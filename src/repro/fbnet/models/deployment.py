"""Deployment-history model (paper section 5.3).

Robotron's monitoring and audit paths read everything through FBNet, so
deployment outcomes must live there too: every guarded rollout persists
one ``DeploymentRecord`` — what was intended (the intent hash), how it
was phased, which config version each device started from and ended on,
and whether the rollout converged to "fully new" or was restored to
last-known-good.
"""

from __future__ import annotations

from repro.fbnet.base import Model, ModelGroup
from repro.fbnet.fields import (
    CharField,
    DateTimeField,
    EnumField,
    IntField,
    JSONField,
)
from repro.fbnet.models.enums import DeploymentOutcome

__all__ = ["DeploymentRecord"]


class DeploymentRecord(Model):
    """The audit-log row for one guarded (health-gated) rollout."""

    class Meta:
        group = ModelGroup.DESIRED

    #: sha256 over the sorted (device, config text) pairs being deployed.
    intent_hash = CharField()
    operation = CharField(default="guarded_rollout")
    outcome = EnumField(DeploymentOutcome)
    rollback_reason = CharField(default="", max_length=512)
    #: Per-phase log: [{"phase": ..., "devices": [...], "gate": ...}, ...]
    phases = JSONField(default=list)
    #: Per-device versions: {name: {"lkg": v, "final": v, "state": ...}}
    device_versions = JSONField(default=dict)
    started_at = DateTimeField(default=0.0)
    finished_at = DateTimeField(default=0.0)
    devices_total = IntField(default=0, min_value=0)
    devices_rolled_back = IntField(default=0, min_value=0)
