"""Additional Desired models: optical transport, AS allocations, peering.

The paper's FBNet had "over 250 models in total covering IP/AS number
allocations, optical transport, BGP, operational events, etc."
(section 4.1.1).  These models cover those families so the model graph —
and the Figure 13 related-models analysis — reflects the breadth of the
production store, not just the core connectivity models.
"""

from __future__ import annotations

from repro.fbnet.base import Model, ModelGroup
from repro.fbnet.fields import (
    BoolField,
    CharField,
    DateTimeField,
    EnumField,
    FloatField,
    ForeignKey,
    IntField,
    OnDelete,
)
from repro.fbnet.models.circuit import Circuit
from repro.fbnet.models.device import Device
from repro.fbnet.models.enums import DrainState
from repro.fbnet.models.location import BackboneSite, Pop
from repro.fbnet.models.routing import AutonomousSystem, BgpV6Session

__all__ = [
    "AsnAllocation",
    "ConsoleServer",
    "DrainEvent",
    "IspPeer",
    "MaintenanceWindow",
    "OpticalChannel",
    "OpticalSpan",
    "PeeringLink",
    "PowerFeed",
]


class OpticalSpan(Model):
    """A long-haul optical span between two backbone sites (section 2.3)."""

    class Meta:
        group = ModelGroup.DESIRED

    name = CharField(unique=True)
    a_site = ForeignKey(BackboneSite, on_delete=OnDelete.PROTECT, related_name="a_spans")
    z_site = ForeignKey(BackboneSite, on_delete=OnDelete.PROTECT, related_name="z_spans")
    provider = CharField(default="")
    length_km = IntField(default=0, min_value=0)


class OpticalChannel(Model):
    """A wavelength on a span carrying one circuit."""

    class Meta:
        group = ModelGroup.DESIRED
        unique_together = (("span", "wavelength_nm"),)

    span = ForeignKey(OpticalSpan, on_delete=OnDelete.CASCADE)
    circuit = ForeignKey(Circuit, null=True, on_delete=OnDelete.SET_NULL)
    wavelength_nm = IntField(min_value=1)


class AsnAllocation(Model):
    """An AS number allocated to a site's fabric (IP/AS allocation family)."""

    class Meta:
        group = ModelGroup.DESIRED
        unique_together = (("autonomous_system", "pop"),)

    autonomous_system = ForeignKey(AutonomousSystem, on_delete=OnDelete.PROTECT)
    pop = ForeignKey(Pop, null=True, on_delete=OnDelete.PROTECT)
    purpose = CharField(default="fabric")


class IspPeer(Model):
    """An external peer organization (section 2.1's ISPs)."""

    class Meta:
        group = ModelGroup.DESIRED

    name = CharField(unique=True)
    autonomous_system = ForeignKey(AutonomousSystem, on_delete=OnDelete.PROTECT)


class PeeringLink(Model):
    """A peering/transit interconnect at a POP (section 2.1)."""

    class Meta:
        group = ModelGroup.DESIRED

    isp_peer = ForeignKey(IspPeer, on_delete=OnDelete.PROTECT)
    pop = ForeignKey(Pop, on_delete=OnDelete.PROTECT)
    circuit = ForeignKey(Circuit, null=True, on_delete=OnDelete.SET_NULL)
    bgp_session = ForeignKey(BgpV6Session, null=True, on_delete=OnDelete.SET_NULL)
    kind = CharField(default="peering", help_text="'peering' or 'transit'.")


class DrainEvent(Model):
    """A drain/undrain of a device (the operational-events family)."""

    class Meta:
        group = ModelGroup.DESIRED

    device = ForeignKey(Device, on_delete=OnDelete.CASCADE)
    state = EnumField(DrainState)
    reason = CharField(default="")
    at = DateTimeField(default=0.0)
    #: False for compensating records: a push that failed and was rolled
    #: back, or a post-deploy verification that found live state wrong.
    succeeded = BoolField(default=True)


class MaintenanceWindow(Model):
    """A planned window during which a device may be drained."""

    class Meta:
        group = ModelGroup.DESIRED

    device = ForeignKey(Device, on_delete=OnDelete.CASCADE)
    ticket_id = CharField(default="")
    starts_at = DateTimeField(default=0.0)
    ends_at = DateTimeField(default=0.0)


class ConsoleServer(Model):
    """Out-of-band console access for a device."""

    class Meta:
        group = ModelGroup.DESIRED
        unique_together = (("device", "port"),)

    name = CharField()
    device = ForeignKey(Device, on_delete=OnDelete.CASCADE)
    port = IntField(min_value=0)


class PowerFeed(Model):
    """A power feed supplying a device (asset/facility family)."""

    class Meta:
        group = ModelGroup.DESIRED
        unique_together = (("device", "feed"),)

    device = ForeignKey(Device, on_delete=OnDelete.CASCADE)
    feed = CharField(help_text="'A' or 'B'.")
    watts = FloatField(default=0.0)
