"""Derived models: the observed network state (paper section 4.1.2).

Derived models are populated from real-time device collection, never by
design tools.  Following the paper's principles they parallel the Desired
models where comparison matters (a ``DerivedInterface`` exists because the
Desired interfaces exist, but only the Derived one carries ``oper_status``)
and reference components by *name*, since collection does not know Desired
object ids — the audit layer joins on names.
"""

from __future__ import annotations

from repro.fbnet.base import Model, ModelGroup
from repro.fbnet.fields import (
    CharField,
    DateTimeField,
    EnumField,
    FloatField,
    IntField,
    JSONField,
)
from repro.fbnet.models.enums import AdminStatus, EventSeverity, OperStatus

__all__ = [
    "DerivedBgpSession",
    "DerivedCircuit",
    "DerivedDevice",
    "DerivedInterface",
    "DerivedRunningConfig",
    "OperationalEvent",
]


class DerivedDevice(Model):
    """A device as observed by active monitoring."""

    class Meta:
        group = ModelGroup.DERIVED
        unique_together = (("name",),)

    name = CharField(unique=True)
    vendor = CharField(default="")
    os_version = CharField(default="")
    uptime_seconds = FloatField(default=0.0)
    cpu_utilization = FloatField(default=0.0, help_text="0..1 fraction.")
    memory_utilization = FloatField(default=0.0, help_text="0..1 fraction.")
    collected_at = DateTimeField(default=0.0)


class DerivedInterface(Model):
    """An interface as observed; carries ``oper_status`` (section 4.1.2)."""

    class Meta:
        group = ModelGroup.DERIVED
        unique_together = (("device_name", "name"),)

    device_name = CharField()
    name = CharField()
    oper_status = EnumField(OperStatus, default=OperStatus.UNKNOWN)
    admin_status = EnumField(AdminStatus, default=AdminStatus.ENABLED)
    speed_mbps = IntField(default=0, min_value=0)
    input_bps = FloatField(default=0.0)
    output_bps = FloatField(default=0.0)
    collected_at = DateTimeField(default=0.0)


class DerivedCircuit(Model):
    """A circuit inferred from LLDP neighborship (section 4.1.2).

    Created when LLDP data from two devices shows their physical
    interfaces are neighbors of each other.
    """

    class Meta:
        group = ModelGroup.DERIVED
        unique_together = (("a_device_name", "a_interface_name"),)

    a_device_name = CharField()
    a_interface_name = CharField()
    z_device_name = CharField()
    z_interface_name = CharField()
    collected_at = DateTimeField(default=0.0)


class DerivedBgpSession(Model):
    """A BGP session state as observed on a device."""

    class Meta:
        group = ModelGroup.DERIVED
        unique_together = (("device_name", "peer_ip"),)

    device_name = CharField()
    peer_ip = CharField()
    state = CharField(default="idle", help_text="idle/active/established.")
    prefixes_received = IntField(default=0, min_value=0)
    collected_at = DateTimeField(default=0.0)


class DerivedRunningConfig(Model):
    """A device's collected running configuration (section 5.4.3)."""

    class Meta:
        group = ModelGroup.DERIVED
        unique_together = (("device_name",),)

    device_name = CharField(unique=True)
    config_hash = CharField()
    config_text = CharField(max_length=1_000_000)
    collected_at = DateTimeField(default=0.0)


class OperationalEvent(Model):
    """A classified operational event from the passive pipeline (Table 3)."""

    class Meta:
        group = ModelGroup.DERIVED

    device_name = CharField()
    severity = EnumField(EventSeverity)
    rule_name = CharField(default="", help_text="The regex rule that matched.")
    message = CharField(max_length=2048)
    occurred_at = DateTimeField(default=0.0)
    extra = JSONField(default=dict)
