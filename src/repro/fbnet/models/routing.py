"""Routing models: AS numbers, BGP sessions, MPLS-TE tunnels (sections 2.3, 4.1).

BGP sessions are modeled per address family (``BgpV4Session`` /
``BgpV6Session``) — the paper notes ``BGPV4Session`` was created during the
Gen1 (L2) to Gen2 (L3 BGP) DC transition (section 6.1).  iBGP sessions
between backbone edge nodes form a full mesh, which is why adding a router
touches session objects on *all* other routers (section 5.1.2).
"""

from __future__ import annotations

from repro.fbnet.base import Model, ModelGroup
from repro.fbnet.fields import (
    ASNField,
    CharField,
    EnumField,
    ForeignKey,
    IntField,
    JSONField,
    OnDelete,
    V4AddressField,
    V6AddressField,
)
from repro.fbnet.models.device import Device
from repro.fbnet.models.enums import BgpSessionType

__all__ = [
    "AutonomousSystem",
    "BgpSession",
    "BgpV4Session",
    "BgpV6Session",
    "MplsTunnel",
    "RoutePolicy",
]


class AutonomousSystem(Model):
    """A BGP autonomous system (ours or a peer's)."""

    class Meta:
        group = ModelGroup.DESIRED

    asn = ASNField(unique=True)
    name = CharField(default="")


class RoutePolicy(Model):
    """A BGP import/export policy of cherry-picked prefixes.

    The paper's section-8 incident involved an ISP session requiring "a
    custom import policy containing cherry-picked prefixes"; sessions
    reference their policy here and config generation renders it into
    each vendor's policy syntax.
    """

    class Meta:
        group = ModelGroup.DESIRED

    name = CharField(unique=True)
    #: The prefixes the policy matches, as CIDR strings.
    prefixes = JSONField(default=list)
    action = CharField(default="permit", help_text="'permit' or 'deny'.")
    description = CharField(default="")


class BgpSession(Model):
    """Abstract base of per-address-family BGP sessions.

    One object per *session*: ``device``/``local_ip`` is one endpoint and
    ``peer_device``/``peer_ip`` the other; config generation emits both
    sides from the same object, which is how Robotron guarantees that
    "proper configuration exists in both peers of every session"
    (section 1).  ``peer_device`` is null for external (ISP) peers.
    An iBGP full mesh over N devices therefore has N*(N-1)/2 objects,
    and adding a router creates sessions touching every other router.
    """

    class Meta:
        abstract = True

    device = ForeignKey(Device, on_delete=OnDelete.CASCADE, related_name="{model}s")
    peer_device = ForeignKey(
        Device,
        null=True,
        on_delete=OnDelete.CASCADE,
        related_name="peer_{model}s",
    )
    session_type = EnumField(BgpSessionType)
    local_asn = ASNField()
    peer_asn = ASNField()
    description = CharField(default="")
    import_policy = ForeignKey(
        RoutePolicy, null=True, on_delete=OnDelete.PROTECT,
        related_name="importing_{model}s",
    )


class BgpV4Session(BgpSession):
    """A BGP session over IPv4."""

    class Meta:
        group = ModelGroup.DESIRED
        unique_together = (("device", "peer_ip"),)

    local_ip = V4AddressField()
    peer_ip = V4AddressField()


class BgpV6Session(BgpSession):
    """A BGP session over IPv6."""

    class Meta:
        group = ModelGroup.DESIRED
        unique_together = (("device", "peer_ip"),)

    local_ip = V6AddressField()
    peer_ip = V6AddressField()


class MplsTunnel(Model):
    """An MPLS-TE tunnel (label-switched path) between two edge nodes.

    Tunnels form a mesh between PRs and DRs across the backbone
    (section 2.3); node addition/removal regenerates the mesh.
    """

    class Meta:
        group = ModelGroup.DESIRED
        unique_together = (("head_device", "tail_device"),)

    name = CharField(unique=True)
    head_device = ForeignKey(
        Device, on_delete=OnDelete.CASCADE, related_name="head_tunnels"
    )
    tail_device = ForeignKey(
        Device, on_delete=OnDelete.CASCADE, related_name="tail_tunnels"
    )
    bandwidth_mbps = IntField(default=0, min_value=0)
