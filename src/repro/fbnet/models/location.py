"""Location, cluster, and rack models.

Locations anchor the 'network of networks': edge POPs, data centers, and
backbone sites (paper Figure 1).  Clusters group the devices built from one
topology template (section 5.1.1); racks and rack profiles drive DC
downlink allocation (the stale-config war story of section 8 revolves
around rack profiles).
"""

from __future__ import annotations

from repro.fbnet.base import Model, ModelGroup
from repro.fbnet.fields import (
    BoolField,
    CharField,
    EnumField,
    ForeignKey,
    IntField,
    OnDelete,
)
from repro.fbnet.models.enums import (
    ClusterGeneration,
    ClusterStatus,
    NetworkDomain,
)

__all__ = [
    "BackboneSite",
    "Cluster",
    "Datacenter",
    "Location",
    "Pop",
    "Rack",
    "RackProfile",
    "Region",
]


class Region(Model):
    """A geographic region used for replication placement and phased rollout."""

    class Meta:
        group = ModelGroup.DESIRED

    name = CharField(unique=True, help_text="Region code, e.g. 'na-east'.")


class Location(Model):
    """Abstract base of every physical site."""

    class Meta:
        abstract = True

    name = CharField(unique=True, help_text="Site code, e.g. 'pop07'.")
    region = ForeignKey(Region, on_delete=OnDelete.PROTECT, related_name="{model}s")
    domain = EnumField(NetworkDomain, help_text="Which network domain this site is in.")


class Pop(Location):
    """An edge point-of-presence cluster site (section 2.1)."""

    class Meta:
        group = ModelGroup.DESIRED

    peering_capacity_gbps = IntField(
        default=0, min_value=0, help_text="Total provisioned peering/transit capacity."
    )


class Datacenter(Location):
    """A data-center site hosting one or more clusters (section 2.2)."""

    class Meta:
        group = ModelGroup.DESIRED

    hall_count = IntField(default=1, min_value=1)


class BackboneSite(Location):
    """A backbone location housing backbone routers (section 2.3)."""

    class Meta:
        group = ModelGroup.DESIRED


class RackProfile(Model):
    """How many downlinks each rack of this profile consumes (section 8)."""

    class Meta:
        group = ModelGroup.DESIRED

    name = CharField(unique=True)
    downlinks_per_rack = IntField(min_value=1)
    downlink_speed_mbps = IntField(default=10_000, min_value=10)


class Cluster(Model):
    """A group of devices built from one topology template (section 5.1.1)."""

    class Meta:
        group = ModelGroup.DESIRED

    name = CharField(unique=True, help_text="Cluster code, e.g. 'pop07.c01'.")
    pop = ForeignKey(Pop, null=True, on_delete=OnDelete.PROTECT)
    datacenter = ForeignKey(Datacenter, null=True, on_delete=OnDelete.PROTECT)
    generation = EnumField(ClusterGeneration)
    status = EnumField(ClusterStatus, default=ClusterStatus.PLANNED)
    v6_only = BoolField(default=False, help_text="Gen3 DC clusters are v6-only.")


class Rack(Model):
    """A server rack within a cluster, consuming downlinks per its profile."""

    class Meta:
        group = ModelGroup.DESIRED
        unique_together = (("cluster", "name"),)

    name = CharField()
    cluster = ForeignKey(Cluster, on_delete=OnDelete.CASCADE)
    rack_profile = ForeignKey(RackProfile, on_delete=OnDelete.PROTECT)
