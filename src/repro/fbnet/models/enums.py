"""Enumerated value domains shared across FBNet models."""

from __future__ import annotations

from enum import Enum

__all__ = [
    "AdminStatus",
    "BgpSessionType",
    "CircuitStatus",
    "ClusterGeneration",
    "ClusterStatus",
    "DeploymentOutcome",
    "DeviceRole",
    "DeviceStatus",
    "DrainState",
    "EventSeverity",
    "NetworkDomain",
    "OperStatus",
    "Vendor",
]


class NetworkDomain(Enum):
    """The three domains of the 'network of networks' (paper section 2)."""

    POP = "pop"
    DATACENTER = "datacenter"
    BACKBONE = "backbone"


class Vendor(Enum):
    """Device vendors.

    The paper anonymizes its two router vendors; we model two dialects —
    ``VENDOR1`` uses a flat industry-standard CLI (Figure 9, left) and
    ``VENDOR2`` uses a hierarchical curly-brace config (Figure 9, right).
    """

    VENDOR1 = "vendor1"
    VENDOR2 = "vendor2"


class DeviceRole(Enum):
    """Functional role of a network device (Figures 1-2)."""

    PEERING_ROUTER = "pr"
    BACKBONE_ROUTER = "bb"
    DATACENTER_ROUTER = "dr"
    AGGREGATION_SWITCH = "psw"
    RACK_SWITCH = "tor"


class DeviceStatus(Enum):
    """Life-cycle status of a device."""

    PLANNED = "planned"
    PROVISIONING = "provisioning"
    PRODUCTION = "production"
    DECOMMISSIONED = "decommissioned"


class DrainState(Enum):
    """Whether the component is serving production traffic (section 6.1)."""

    UNDRAINED = "undrained"
    DRAINING = "draining"
    DRAINED = "drained"


class CircuitStatus(Enum):
    """Life-cycle status of a circuit."""

    PLANNED = "planned"
    PROVISIONING = "provisioning"
    PRODUCTION = "production"
    DECOMMISSIONED = "decommissioned"


class OperStatus(Enum):
    """Operational state of an interface/session as observed (Derived)."""

    UP = "up"
    DOWN = "down"
    UNKNOWN = "unknown"


class AdminStatus(Enum):
    """Administrative (configured) state of an interface."""

    ENABLED = "enabled"
    DISABLED = "disabled"


class BgpSessionType(Enum):
    """Internal vs external BGP (section 2.3)."""

    IBGP = "ibgp"
    EBGP = "ebgp"


class ClusterGeneration(Enum):
    """Cluster architecture generations (Figure 12).

    POPs went from Gen1 to bigger Gen2 clusters (in-place upgrades); DCs
    went through three coexisting generations, with Gen3 being v6-only.
    """

    POP_GEN1 = "pop-gen1"
    POP_GEN2 = "pop-gen2"
    DC_GEN1 = "dc-gen1"  # L2 clusters
    DC_GEN2 = "dc-gen2"  # L3 BGP clusters
    DC_GEN3 = "dc-gen3"  # v6-only clusters


class ClusterStatus(Enum):
    """Life-cycle status of a cluster."""

    PLANNED = "planned"
    TURNUP = "turnup"
    PRODUCTION = "production"
    DECOMMISSIONED = "decommissioned"


class DeploymentOutcome(Enum):
    """How a guarded rollout ended (section 5.3.2's safety guarantee).

    A rollout either converges fully to the new configs (``SUCCEEDED``),
    or is fully restored to last-known-good (``ROLLED_BACK``); when even
    the restore could not complete — e.g. a device crashed mid-rollback —
    the record says so loudly (``ROLLBACK_FAILED``).
    """

    SUCCEEDED = "succeeded"
    ROLLED_BACK = "rolled_back"
    ROLLBACK_FAILED = "rollback_failed"


class EventSeverity(Enum):
    """Urgency levels of classified syslog events (Table 3)."""

    CRITICAL = "critical"
    MAJOR = "major"
    MINOR = "minor"
    WARNING = "warning"
    NOTICE = "notice"
    IGNORED = "ignored"
