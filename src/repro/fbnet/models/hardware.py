"""Hardware profile models.

A hardware profile describes a device SKU: its vendor, how many linecard
slots it has, and what each linecard provides.  Topology templates reference
profiles by name (paper Figure 7: ``Router_Vendor1``), and design validation
uses them to check port-capacity limits.
"""

from __future__ import annotations

from repro.fbnet.base import Model, ModelGroup
from repro.fbnet.fields import CharField, EnumField, ForeignKey, IntField, OnDelete
from repro.fbnet.models.enums import Vendor

__all__ = ["HardwareProfile", "LinecardModel"]


class LinecardModel(Model):
    """A linecard SKU: port count and per-port speed."""

    class Meta:
        group = ModelGroup.DESIRED

    name = CharField(unique=True, help_text="Linecard SKU, e.g. 'LC-48x10G'.")
    port_count = IntField(min_value=1)
    port_speed_mbps = IntField(min_value=10)


class HardwareProfile(Model):
    """A device SKU referenced by topology templates (Figure 7)."""

    class Meta:
        group = ModelGroup.DESIRED

    name = CharField(unique=True, help_text="Profile name, e.g. 'Router_Vendor1'.")
    vendor = EnumField(Vendor)
    slot_count = IntField(min_value=1, help_text="Number of linecard slots.")
    linecard_model = ForeignKey(LinecardModel, on_delete=OnDelete.PROTECT)

    def total_ports(self) -> int:
        """Maximum number of physical ports when fully populated."""
        lc = self.related("linecard_model")
        assert lc is not None
        return self.slot_count * lc.port_count
