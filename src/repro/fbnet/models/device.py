"""Device models: routers and switches (paper Figures 2, 5).

``Device`` is abstract; each functional role is a concrete model, matching
the paper's examples (``BackboneRouter``, ``NetworkSwitch``, ...).  A device
lives at a location, is built from a hardware profile, and may belong to a
cluster.  Its ``drain_state`` is the purely operational attribute the paper
calls out in section 6.1.
"""

from __future__ import annotations

from repro.fbnet.base import Model, ModelGroup
from repro.fbnet.fields import (
    CharField,
    EnumField,
    ForeignKey,
    OnDelete,
    V4AddressField,
    V6AddressField,
)
from repro.fbnet.models.enums import DeviceRole, DeviceStatus, DrainState
from repro.fbnet.models.hardware import HardwareProfile
from repro.fbnet.models.location import BackboneSite, Cluster, Datacenter, Pop

__all__ = [
    "BackboneRouter",
    "DatacenterRouter",
    "Device",
    "NetworkSwitch",
    "PeeringRouter",
    "RackSwitch",
]


class Device(Model):
    """Abstract base of every managed network device."""

    class Meta:
        abstract = True

    name = CharField(unique=True, help_text="Hostname, e.g. 'pop07.c01.psw1'.")
    hardware_profile = ForeignKey(
        HardwareProfile, on_delete=OnDelete.PROTECT, related_name="{model}s"
    )
    status = EnumField(DeviceStatus, default=DeviceStatus.PLANNED)
    drain_state = EnumField(DrainState, default=DrainState.DRAINED)
    loopback_v4 = V4AddressField(null=True)
    loopback_v6 = V6AddressField(null=True)
    cluster = ForeignKey(
        Cluster, null=True, on_delete=OnDelete.PROTECT, related_name="{model}s"
    )

    #: Functional role; concrete subclasses override.
    role: DeviceRole

    def vendor(self):
        """The device's vendor, via its hardware profile."""
        profile = self.related("hardware_profile")
        assert profile is not None
        return profile.vendor


class PeeringRouter(Device):
    """Edge router peering with ISPs and connecting to the backbone (PR)."""

    class Meta:
        group = ModelGroup.DESIRED

    role = DeviceRole.PEERING_ROUTER
    pop = ForeignKey(Pop, on_delete=OnDelete.PROTECT)


class BackboneRouter(Device):
    """Backbone transport router (BB)."""

    class Meta:
        group = ModelGroup.DESIRED

    role = DeviceRole.BACKBONE_ROUTER
    site = ForeignKey(BackboneSite, on_delete=OnDelete.PROTECT)


class DatacenterRouter(Device):
    """Data-center cluster edge router (DR)."""

    class Meta:
        group = ModelGroup.DESIRED

    role = DeviceRole.DATACENTER_ROUTER
    datacenter = ForeignKey(Datacenter, on_delete=OnDelete.PROTECT)


class NetworkSwitch(Device):
    """Aggregation switch in a POP or DC fabric (PSW)."""

    class Meta:
        group = ModelGroup.DESIRED

    role = DeviceRole.AGGREGATION_SWITCH


class RackSwitch(Device):
    """Top-of-rack switch (TOR)."""

    class Meta:
        group = ModelGroup.DESIRED

    role = DeviceRole.RACK_SWITCH
