"""Linecard and interface models (paper Figures 4-5).

The modeling follows the paper exactly: physical interfaces reside in a
linecard (named ``etX/Y`` where X is the linecard slot, Y the port) and are
grouped many-to-one into an aggregated interface (``aeN``) running LACP.
A physical interface reaches its device *indirectly* via its linecard —
the paper's section 4.1.2 principle (3): no duplicated ``device`` field.
"""

from __future__ import annotations

from repro.fbnet.base import Model, ModelGroup
from repro.fbnet.fields import (
    BoolField,
    CharField,
    ForeignKey,
    IntField,
    OnDelete,
)
from repro.fbnet.models.device import Device

__all__ = ["AggregatedInterface", "Interface", "Linecard", "PhysicalInterface"]


class Linecard(Model):
    """A linecard installed in a device chassis slot."""

    class Meta:
        group = ModelGroup.DESIRED
        unique_together = (("device", "slot"),)

    device = ForeignKey(Device, on_delete=OnDelete.CASCADE)
    slot = IntField(min_value=0)
    linecard_model = ForeignKey("LinecardModel", on_delete=OnDelete.PROTECT)


class Interface(Model):
    """Abstract base of physical and aggregated interfaces."""

    class Meta:
        abstract = True

    name = CharField(help_text="Interface name, e.g. 'et1/2' or 'ae0'.")
    description = CharField(default="", max_length=512)
    mtu = IntField(default=9192, min_value=68, max_value=65535)
    enabled = BoolField(default=True)


class AggregatedInterface(Interface):
    """A LACP bundle of physical interfaces (``aeN``)."""

    class Meta:
        group = ModelGroup.DESIRED
        unique_together = (("device", "number"),)

    device = ForeignKey(Device, on_delete=OnDelete.CASCADE)
    number = IntField(min_value=0, help_text="The N in 'aeN'.")
    lacp_fast = BoolField(default=True)


class LoopbackInterface(Interface):
    """A device loopback (``loN``), anchor for loopback prefixes.

    Backbone routers carry their iBGP session endpoints on loopbacks, so
    loopback prefixes must be Desired objects like any other allocation.
    """

    class Meta:
        group = ModelGroup.DESIRED
        unique_together = (("device", "unit"),)

    device = ForeignKey(Device, on_delete=OnDelete.CASCADE)
    unit = IntField(default=0, min_value=0)


class PhysicalInterface(Interface):
    """A physical port (``etX/Y``), resident in a linecard.

    ``agg_interface`` captures the many-to-one grouping into a LACP bundle
    (Figure 5); it is null for ungrouped ports (e.g. TOR downlinks).
    """

    class Meta:
        group = ModelGroup.DESIRED
        unique_together = (("linecard", "port"),)

    linecard = ForeignKey(Linecard, on_delete=OnDelete.CASCADE)
    port = IntField(min_value=0, help_text="The Y in 'etX/Y'.")
    speed_mbps = IntField(default=10_000, min_value=10)
    agg_interface = ForeignKey(
        AggregatedInterface, null=True, on_delete=OnDelete.SET_NULL
    )

    def device(self) -> Device:
        """The owning device, reached indirectly through the linecard."""
        linecard = self.related("linecard")
        assert linecard is not None
        device = linecard.related("device")
        assert device is not None
        return device
