"""IP prefix models and allocation pools (paper Figures 5-6).

Prefixes are configured per aggregated interface (the /31 v4 and /127 v6
point-to-point subnets of Figure 4).  ``PrefixPool`` backs the IPAM
allocators in :mod:`repro.design.ipam`; the paper's section 7 recounts how
circuit IPs used to be found by pinging — Desired-model pools replaced that.
"""

from __future__ import annotations

from repro.fbnet.base import Model, ModelGroup
from repro.fbnet.fields import (
    CharField,
    ForeignKey,
    IntField,
    OnDelete,
    V4PrefixField,
    V6PrefixField,
)
from repro.fbnet.models.interface import Interface

__all__ = ["Prefix", "PrefixPool", "V4Prefix", "V6Prefix"]


class PrefixPool(Model):
    """An allocation pool that IPAM carves point-to-point subnets from."""

    class Meta:
        group = ModelGroup.DESIRED

    name = CharField(unique=True, help_text="e.g. 'backbone-p2p-v6'.")
    prefix = CharField(help_text="The pool's covering prefix in CIDR form.")
    version = IntField(min_value=4, max_value=6, help_text="4 or 6.")
    purpose = CharField(default="p2p", help_text="'p2p', 'loopback', or 'rack'.")


class Prefix(Model):
    """Abstract base of interface-assigned prefixes."""

    class Meta:
        abstract = True

    interface = ForeignKey(
        Interface, on_delete=OnDelete.CASCADE, related_name="{model}es"
    )
    pool = ForeignKey(PrefixPool, null=True, on_delete=OnDelete.PROTECT)


class V4Prefix(Prefix):
    """An IPv4 interface address with mask, e.g. ``10.128.0.0/31``."""

    class Meta:
        group = ModelGroup.DESIRED

    prefix = V4PrefixField(unique=True)


class V6Prefix(Prefix):
    """An IPv6 interface address with mask, e.g. ``2401:db00::/127``.

    Mirrors the paper's Figure 6 ``V6Prefix`` model, including the custom
    prefix field that rejects non-IPv6 values at assignment.
    """

    class Meta:
        group = ModelGroup.DESIRED

    prefix = V6PrefixField(unique=True)
