"""Circuit and link-group models (paper Figures 4-5, 7).

A circuit is a point-to-point physical connection terminating at exactly
two physical interfaces.  A link group captures a topology template's
"group of links" between a device pair — a bundle of N parallel circuits
whose endpoint ports are aggregated with LACP on both sides.
"""

from __future__ import annotations

from repro.fbnet.base import Model, ModelGroup
from repro.fbnet.fields import CharField, EnumField, ForeignKey, IntField, OnDelete
from repro.fbnet.models.enums import CircuitStatus
from repro.fbnet.models.interface import AggregatedInterface, PhysicalInterface

__all__ = ["Circuit", "LinkGroup"]


class LinkGroup(Model):
    """A bundle of parallel circuits between two devices (Figure 7).

    The two ends of the bundle are the aggregated interfaces on each
    device; member circuits reference their link group.
    """

    class Meta:
        group = ModelGroup.DESIRED

    name = CharField(unique=True, help_text="e.g. 'pop07.psw1--pop07.pr1'.")
    a_agg_interface = ForeignKey(
        AggregatedInterface, on_delete=OnDelete.PROTECT, related_name="a_link_groups"
    )
    z_agg_interface = ForeignKey(
        AggregatedInterface, on_delete=OnDelete.PROTECT, related_name="z_link_groups"
    )


class Circuit(Model):
    """A point-to-point circuit between two physical interfaces.

    Design rule (enforced by :mod:`repro.design.validation`): a circuit must
    be associated with exactly two physical interfaces, on different
    devices.  ``a_interface``/``z_interface`` may be null mid-migration —
    the circuit-migration tool disconnects one end before reconnecting it.
    """

    class Meta:
        group = ModelGroup.DESIRED

    name = CharField(unique=True, help_text="Circuit id, e.g. 'cid-000123'.")
    a_interface = ForeignKey(
        PhysicalInterface,
        null=True,
        on_delete=OnDelete.PROTECT,
        related_name="a_circuits",
    )
    z_interface = ForeignKey(
        PhysicalInterface,
        null=True,
        on_delete=OnDelete.PROTECT,
        related_name="z_circuits",
    )
    link_group = ForeignKey(LinkGroup, null=True, on_delete=OnDelete.SET_NULL)
    status = EnumField(CircuitStatus, default=CircuitStatus.PLANNED)
    provider = CharField(default="", help_text="Circuit provider for long-haul spans.")
    speed_mbps = IntField(default=10_000, min_value=10)
