"""The FBNet persistent object store (paper section 4.3.1).

The paper implements FBNet on MySQL behind the Django ORM; this reproduction
provides an in-process relational store with the same observable semantics:

* one *table* per concrete model, rows keyed by an integer primary key;
* foreign-key integrity, unique and unique-together constraints;
* atomic multi-object transactions — no partial state is visible and a
  failed transaction rolls back completely (section 4.3.2);
* a change journal recording every create/update/delete, which powers both
  the replication layer (section 4.3.3) and the design-change accounting
  behind the paper's Figure 15.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum
from time import perf_counter
from typing import Any, TypeVar

from repro import faults, obs
from repro.obs import flight

from repro.common.errors import (
    IntegrityError,
    ObjectDoesNotExist,
    TransactionError,
)
from repro.fbnet.base import Model, model_registry
from repro.fbnet.changelog import ReadSet, equality_dependencies, query_models
from repro.fbnet.fields import OnDelete
from repro.fbnet.query import Query, ensure_query

__all__ = ["ChangeOp", "ChangeRecord", "ObjectStore"]

M = TypeVar("M", bound=Model)


class ChangeOp(Enum):
    """The kind of mutation a journal entry records."""

    CREATE = "create"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class ChangeRecord:
    """One committed mutation, as seen by replication and accounting."""

    txn_id: int
    op: ChangeOp
    model: str
    obj_id: int
    #: Field values after the change (for CREATE/UPDATE) or before (DELETE).
    values: dict[str, Any] = field(repr=False, default_factory=dict)
    #: Names of the fields whose values changed (UPDATE only).
    changed_fields: tuple[str, ...] = ()
    #: The flight-recorder change this mutation belongs to ("" when the
    #: write happened outside any change context — e.g. monitoring-derived
    #: state).  Replication carries the id along unchanged, so a replica's
    #: journal attributes rows to the same change as the master's.
    change_id: str = ""


@dataclass
class _UndoEntry:
    op: ChangeOp
    model: type[Model]
    obj_id: int
    old_values: dict[str, Any] | None  # None for CREATE
    #: The live instance a DELETE detached, so rollback can revive *it*
    #: (not a copy) and the caller's references stay valid.
    obj: Model | None = None


class ObjectStore:
    """An in-process FBNet object store.

    The store is synchronous and single-writer, matching the paper's setup
    of a single master database; concurrency across regions is modeled by
    :mod:`repro.fbnet.replication` on top of the journal this store emits.
    """

    def __init__(self, name: str = "fbnet"):
        self.name = name
        self._tables: dict[str, dict[int, Model]] = {}
        # (source model name, fk field) -> target id -> set of source ids
        self._reverse_index: dict[tuple[str, str], dict[int, set[int]]] = {}
        # Shadow copy of each stored object's last-committed field values,
        # used to compute changed-field sets and maintain the reverse index.
        self._known_values: dict[tuple[str, int], dict[str, Any]] = {}
        # Unique indexes: (family root, field) -> value -> object id, and
        # (model, field group) -> value tuple -> object id.  Kept in sync
        # by _index/_unindex so constraint checks stay O(1).
        self._unique_index: dict[tuple[str, str], dict[Any, int]] = {}
        self._unique_together_index: dict[tuple[str, tuple[str, ...]], dict[tuple, int]] = {}
        self._next_id = 1
        # Plain int (not itertools.count) so snapshots can persist it and
        # recovery can restore it.
        self._next_txn_id = 1
        self._journal: list[ChangeRecord] = []
        # Durability sidecar (see repro.fbnet.durability); None = volatile.
        self._durability = None
        # True while recover_store() replays history into this store, so
        # apply_record does not re-journal replayed records to disk.
        self._recovering = False
        self._commit_listeners: list[Callable[[list[ChangeRecord]], None]] = []
        # Committed batches whose listener delivery was deferred by an
        # injected ``store.commit_listener`` fault; flushed (in order) on
        # the next healthy commit or by flush_commit_listeners().
        self._listener_backlog: list[list[ChangeRecord]] = []

        # Transaction state.
        self._txn_depth = 0
        self._undo_log: list[_UndoEntry] = []
        self._pending_records: list[ChangeRecord] = []
        self._current_txn_id: int | None = None
        self._txn_started_at: float | None = None

        # Active read trackers (see track_reads); reads are recorded into
        # every tracker on the stack, so nested computations compose.
        # The stack is thread-local: parallel config renders each track
        # their own reads without seeing (or corrupting) each other's.
        self._tracking = threading.local()

    # ------------------------------------------------------------------
    # Read tracking (change propagation, see repro.fbnet.changelog)
    # ------------------------------------------------------------------

    @property
    def _read_trackers(self) -> list[ReadSet]:
        stack = getattr(self._tracking, "stack", None)
        if stack is None:
            stack = []
            self._tracking.stack = stack
        return stack

    @contextmanager
    def track_reads(self, read_set: ReadSet | None = None) -> Iterator[ReadSet]:
        """Record every read inside the block into ``read_set``.

        The resulting :class:`~repro.fbnet.changelog.ReadSet` can later be
        matched against journal records to decide whether the computation
        that performed the reads needs to be redone.
        """
        read_set = read_set if read_set is not None else ReadSet()
        self._read_trackers.append(read_set)
        try:
            yield read_set
        finally:
            self._read_trackers.pop()

    def _note_model_read(self, model: type[Model]) -> None:
        for tracker in self._read_trackers:
            tracker.add_model(model.__name__)

    def _note_object_read(self, obj: Model) -> None:
        if obj.id is not None:
            for tracker in self._read_trackers:
                tracker.add_object(type(obj).__name__, obj.id)

    def _note_field_read(
        self, model_name: str, field_name: str, values: tuple[Any, ...]
    ) -> None:
        for tracker in self._read_trackers:
            tracker.add_field(model_name, field_name, values)

    def _note_query_read(self, model: type[Model], query: Query) -> None:
        """Record a full-scan query: field deps when analyzable, else models.

        The unanalyzable fallback covers every model the query's paths
        traverse, so evaluating ``query.matches`` during the scan runs
        under :meth:`_suspend_tracking` — the FK hops it resolves through
        the store are membership tests, not semantic reads, and recording
        them would drag every scanned candidate into the read-set.
        """
        if not self._read_trackers:
            return
        deps = equality_dependencies(query)
        if deps is None:
            for name in query_models(model, query):
                for tracker in self._read_trackers:
                    tracker.add_model(name)
            return
        for field_name, values in deps:
            self._note_field_read(model.__name__, field_name, values)

    @contextmanager
    def _suspend_tracking(self) -> Iterator[None]:
        previous = self._read_trackers
        self._tracking.stack = []
        try:
            yield
        finally:
            self._tracking.stack = previous

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator[int]:
        """Run a block atomically; on exception everything is rolled back.

        Nested transactions join the outermost one (savepoints are not
        needed by any Robotron workflow).  Yields the transaction id.
        """
        if self._txn_depth == 0:
            self._current_txn_id = self._next_txn_id
            self._next_txn_id += 1
            self._undo_log = []
            self._pending_records = []
            self._txn_started_at = perf_counter() if obs.enabled() else None
        self._txn_depth += 1
        txn_id = self._current_txn_id
        assert txn_id is not None
        try:
            yield txn_id
        except Exception:
            self._txn_depth -= 1
            if self._txn_depth == 0:
                self._rollback()
            raise
        else:
            self._txn_depth -= 1
            if self._txn_depth == 0:
                self._commit()

    def _commit(self) -> None:
        records = self._pending_records
        self._pending_records = []
        self._undo_log = []
        self._current_txn_id = None
        if self._durability is not None and records:
            # Write-ahead: the transaction is durable before it becomes
            # visible in memory.  A crash raised here (ProcessCrash) leaves
            # in-memory state behind the WAL — recovery replays the frame.
            self._durability.log_commit(records)
        self._journal.extend(records)
        for record in records:
            if record.change_id:
                flight.record(
                    "model.mutation",
                    phase="model",
                    change_id=record.change_id,
                    model=record.model,
                    object_id=record.obj_id,
                    verdict=record.op.value,
                    detail=", ".join(record.changed_fields),
                )
        obs.counter("store.txn", store=self.name, status="commit").inc()
        if self._txn_started_at is not None:
            obs.histogram("store.txn.latency", store=self.name).observe(
                perf_counter() - self._txn_started_at
            )
            self._txn_started_at = None
        obs.histogram(
            "store.txn.rows", obs.COUNT_BUCKETS, store=self.name
        ).observe(len(records))
        if self._commit_listeners and faults.should_inject(
            "store.commit_listener", store=self.name
        ):
            # The listener hookup hiccuped (e.g. the replication shipper):
            # the commit itself is durable, but delivery is deferred until
            # the next commit — downstream sees a lag spike, not data loss.
            self._listener_backlog.append(records)
            return
        self.flush_commit_listeners()
        for listener in self._commit_listeners:
            listener(records)

    def flush_commit_listeners(self) -> None:
        """Deliver any listener batches a fault previously deferred."""
        while self._listener_backlog:
            batch = self._listener_backlog.pop(0)
            for listener in self._commit_listeners:
                listener(batch)

    def _rollback(self) -> None:
        for entry in reversed(self._undo_log):
            table = self._tables.setdefault(entry.model.__name__, {})
            if entry.op is ChangeOp.CREATE:
                obj = table.pop(entry.obj_id, None)
                if obj is not None:
                    self._unindex(obj)
                    obj.id = None
                    obj._store = None
            elif entry.op is ChangeOp.UPDATE:
                obj = table[entry.obj_id]
                self._unindex(obj)
                assert entry.old_values is not None
                obj.__dict__.update(entry.old_values)
                self._index(obj)
            else:  # DELETE
                assert entry.old_values is not None
                # Revive the very instance the delete detached; building a
                # fresh object would strand the caller's reference with
                # id=None, and a later save() on it would insert a duplicate.
                obj = entry.obj if entry.obj is not None else entry.model.__new__(entry.model)
                obj.__dict__.update(entry.old_values)
                obj.id = entry.obj_id
                obj._store = self
                table[entry.obj_id] = obj
                self._index(obj)
        self._undo_log = []
        self._pending_records = []
        self._current_txn_id = None
        self._txn_started_at = None
        obs.counter("store.txn", store=self.name, status="rollback").inc()

    def _in_txn(self) -> bool:
        return self._txn_depth > 0

    @contextmanager
    def _implicit_txn(self) -> Iterator[None]:
        if self._in_txn():
            yield
        else:
            with self.transaction():
                yield

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def save(self, obj: M) -> M:
        """Insert a new object or persist updates to an existing one."""
        if obj._store is not None and obj._store is not self:
            raise IntegrityError("object belongs to a different store")
        with self._implicit_txn():
            if obj.id is None:
                self._insert(obj)
            else:
                try:
                    self._update(obj)
                except Exception:
                    # The caller mutated the live stored instance before
                    # save(); a failed update must not leave that dirty
                    # state visible — restore the last committed values.
                    known = self._last_known_values(obj)
                    if known is not None:
                        obj.__dict__.update(known)
                    raise
        return obj

    def create(self, model: type[M], **field_values: Any) -> M:
        """Construct and insert an object in one step."""
        obj = model(**field_values)
        return self.save(obj)

    def update(self, obj: M, **field_values: Any) -> M:
        """Assign ``field_values`` onto ``obj`` and persist them."""
        for name, value in field_values.items():
            if name not in type(obj)._meta.fields:
                raise IntegrityError(
                    f"{type(obj).__name__} has no field {name!r}"
                )
            setattr(obj, name, value)
        return self.save(obj)

    def delete(self, obj: Model) -> None:
        """Delete ``obj``, honouring referrers' ``on_delete`` policies.

        ``CASCADE`` referrers are deleted recursively, ``SET_NULL``
        referrers have their relationship field cleared, and ``PROTECT``
        referrers abort the whole transaction.
        """
        if obj.id is None or obj._store is not self:
            raise ObjectDoesNotExist(f"{obj!r} is not stored here")
        with self._implicit_txn():
            self._delete_inner(obj, seen=set())

    def _delete_inner(self, obj: Model, seen: set[tuple[str, int]]) -> None:
        key = (type(obj).__name__, obj.id)
        if key in seen:
            return
        seen.add(key)
        assert obj.id is not None
        for related_name, (source_model, fk_name) in model_registry.reverse_relations(
            type(obj)
        ).items():
            referrers = self.referrers(obj, source_model, fk_name)
            if not referrers:
                continue
            fk = source_model._meta.fk_fields[fk_name]
            if fk.on_delete is OnDelete.PROTECT:
                raise IntegrityError(
                    f"cannot delete {obj!r}: protected by "
                    f"{len(referrers)} {source_model.__name__}.{fk_name} referrer(s)"
                )
            for referrer in referrers:
                # A referrer may live in a different partition of a sharded
                # store; its mutation must run on the store that holds it.
                owner = self._owning_store(referrer)
                if fk.on_delete is OnDelete.CASCADE:
                    owner._delete_inner(referrer, seen)
                else:  # SET_NULL
                    referrer.__dict__[fk_name] = None
                    owner._update(referrer)
        self._remove_row(obj)

    def _owning_store(self, obj: Model) -> ObjectStore:
        """The store that physically holds ``obj`` (self, unless sharded)."""
        return self

    def _remove_row(self, obj: Model) -> None:
        table = self._tables.get(type(obj).__name__, {})
        assert obj.id is not None
        if obj.id not in table:
            return  # already deleted within this cascade
        old_values = dict(obj.__dict__)
        old_values.pop("_store", None)
        old_id = obj.id
        self._unindex(obj)
        del table[old_id]
        self._undo_log.append(
            _UndoEntry(ChangeOp.DELETE, type(obj), old_id, old_values, obj=obj)
        )
        self._record(ChangeOp.DELETE, obj, old_id, obj.clone_values(), ())
        obj.id = None
        obj._store = None

    def _alloc_id(self) -> int:
        allocated = self._next_id
        self._next_id += 1
        return allocated

    def _insert(self, obj: Model) -> None:
        self._check_fks(obj)
        self._check_unique(obj, exclude_id=None)
        obj.id = self._alloc_id()
        obj._store = self
        self._tables.setdefault(type(obj).__name__, {})[obj.id] = obj
        self._index(obj)
        self._undo_log.append(_UndoEntry(ChangeOp.CREATE, type(obj), obj.id, None))
        self._record(ChangeOp.CREATE, obj, obj.id, obj.clone_values(), ())

    def _update(self, obj: Model) -> None:
        table = self._tables.get(type(obj).__name__, {})
        assert obj.id is not None
        stored = table.get(obj.id)
        if stored is None:
            raise ObjectDoesNotExist(
                f"{type(obj).__name__} id={obj.id} is not in the store"
            )
        if stored is not obj:
            raise IntegrityError(
                f"stale object: {type(obj).__name__} id={obj.id} differs from "
                "the stored instance"
            )
        self._check_fks(obj)
        self._check_unique(obj, exclude_id=obj.id)
        # Reconstruct the pre-change values from the last journal state is
        # not possible (we mutate in place), so journal undo snapshots the
        # *current* dict before the caller's changes were applied -- callers
        # mutate fields first, so we diff against the index instead.
        old_values = self._last_known_values(obj)
        changed = tuple(
            name
            for name in type(obj)._meta.fields
            if old_values is not None and old_values.get(name) != obj.__dict__.get(name)
        )
        self._unindex_values(obj, old_values)
        self._index(obj)
        undo_values = dict(old_values) if old_values is not None else dict(obj.__dict__)
        undo_values.pop("_store", None)
        self._undo_log.append(
            _UndoEntry(ChangeOp.UPDATE, type(obj), obj.id, undo_values)
        )
        self._record(ChangeOp.UPDATE, obj, obj.id, obj.clone_values(), changed)
        self._known_values[(type(obj).__name__, obj.id)] = {
            name: obj.__dict__.get(name) for name in type(obj)._meta.fields
        }

    # -- value shadow (for computing changed fields + index maintenance) ----

    def _last_known_values(self, obj: Model) -> dict[str, Any] | None:
        assert obj.id is not None
        return self._known_values.get((type(obj).__name__, obj.id))

    # ------------------------------------------------------------------
    # Constraint checks
    # ------------------------------------------------------------------

    def _check_fks(self, obj: Model) -> None:
        for name, fk in type(obj)._meta.fk_fields.items():
            raw = obj.__dict__.get(name)
            if raw is None:
                continue
            if self._resolve(fk.to, raw) is None:
                raise IntegrityError(
                    f"{type(obj).__name__}.{name}: no {fk.to.__name__} with id {raw}"
                )

    def _check_unique(self, obj: Model, exclude_id: int | None) -> None:
        meta = type(obj)._meta
        root = self._family_root(type(obj))
        for name, fld in meta.fields.items():
            if not fld.unique:
                continue
            value = obj.__dict__.get(name)
            if value is None:
                continue
            holder = self._unique_index.get((root, name), {}).get(self._hashable(value))
            if holder is not None and holder != exclude_id:
                raise IntegrityError(
                    f"{type(obj).__name__}.{name}={value!r} violates unique "
                    f"constraint (held by {self._describe_holder(root, holder)})"
                )
        for group in meta.unique_together:
            values = tuple(self._hashable(obj.__dict__.get(n)) for n in group)
            if any(v is None for v in values):
                continue
            holder = self._unique_together_index.get(
                (type(obj).__name__, group), {}
            ).get(values)
            if holder is not None and holder != exclude_id:
                raise IntegrityError(
                    f"{type(obj).__name__}{group} = {values!r} violates "
                    "unique_together"
                )

    def _describe_holder(self, root: str, obj_id: int) -> str:
        for concrete in model_registry.all():
            if self._family_root(concrete) == root:
                obj = self._row(concrete.__name__, obj_id)
                if obj is not None:
                    return repr(obj)
        return f"id={obj_id}"

    @staticmethod
    def _hashable(value: Any) -> Any:
        if isinstance(value, Enum):
            return value.value
        if isinstance(value, (list, dict, set)):
            return repr(value)
        return value

    @staticmethod
    def _family_root(model: type[Model]) -> str:
        """The topmost abstract ancestor's name (unique-constraint scope).

        Unique fields are enforced across the inheritance family so that
        e.g. two device subclasses cannot share a device name.
        """
        root = model
        for klass in model.__mro__[1:]:
            meta = getattr(klass, "_meta", None)
            if meta is not None and getattr(meta, "abstract", False) and klass is not Model:
                root = klass
        return root.__name__

    # ------------------------------------------------------------------
    # Reverse index
    # ------------------------------------------------------------------

    def _index(self, obj: Model) -> None:
        assert obj.id is not None
        meta = type(obj)._meta
        for name, fk in meta.fk_fields.items():
            raw = obj.__dict__.get(name)
            if raw is None:
                continue
            key = (type(obj).__name__, name)
            self._reverse_index.setdefault(key, {}).setdefault(raw, set()).add(obj.id)
        root = self._family_root(type(obj))
        for name, fld in meta.fields.items():
            if not fld.unique:
                continue
            value = obj.__dict__.get(name)
            if value is not None:
                self._unique_index.setdefault((root, name), {})[
                    self._hashable(value)
                ] = obj.id
        for group in meta.unique_together:
            values = tuple(self._hashable(obj.__dict__.get(n)) for n in group)
            if not any(v is None for v in values):
                self._unique_together_index.setdefault(
                    (type(obj).__name__, group), {}
                )[values] = obj.id
        self._known_values[(type(obj).__name__, obj.id)] = {
            name: obj.__dict__.get(name) for name in meta.fields
        }

    def _unindex(self, obj: Model) -> None:
        self._unindex_values(obj, self._last_known_values(obj))
        if obj.id is not None:
            self._known_values.pop((type(obj).__name__, obj.id), None)

    def _unindex_values(self, obj: Model, values: dict[str, Any] | None) -> None:
        if values is None or obj.id is None:
            return
        meta = type(obj)._meta
        for name in meta.fk_fields:
            raw = values.get(name)
            if raw is None:
                continue
            bucket = self._reverse_index.get((type(obj).__name__, name), {}).get(raw)
            if bucket is not None:
                bucket.discard(obj.id)
        root = self._family_root(type(obj))
        for name, fld in meta.fields.items():
            if not fld.unique:
                continue
            value = values.get(name)
            if value is None:
                continue
            bucket = self._unique_index.get((root, name))
            if bucket is not None and bucket.get(self._hashable(value)) == obj.id:
                del bucket[self._hashable(value)]
        for group in meta.unique_together:
            tuple_key = tuple(self._hashable(values.get(n)) for n in group)
            bucket = self._unique_together_index.get((type(obj).__name__, group))
            if bucket is not None and bucket.get(tuple_key) == obj.id:
                del bucket[tuple_key]

    def referrers(
        self, obj: Model, source_model: type[Model], fk_name: str
    ) -> list[Model]:
        """Objects of ``source_model`` whose ``fk_name`` points at ``obj``."""
        assert obj.id is not None
        self._note_field_read(source_model.__name__, fk_name, (obj.id,))
        ids = self._reverse_index.get((source_model.__name__, fk_name), {}).get(
            obj.id, set()
        )
        rows = (self._row(source_model.__name__, i) for i in ids)
        return sorted(
            (row for row in rows if row is not None), key=lambda o: o.id or 0
        )

    def _row(self, model_name: str, obj_id: int) -> Model | None:
        """Resolve one indexed id to its live row.

        The indirection every index consumer goes through: a sharded
        store's indexes are global while its tables are partitioned, so
        the sharded subclasses override this to resolve across partitions.
        """
        return self._tables.get(model_name, {}).get(obj_id)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, model: type[M], obj_id: int) -> M:
        """Fetch one object by id (searching subclass tables too)."""
        found = self._resolve(model, obj_id)
        if found is None:
            raise ObjectDoesNotExist(f"no {model.__name__} with id {obj_id}")
        self._note_object_read(found)
        return found

    def _resolve(self, model: type[M], obj_id: int) -> M | None:
        obj = self._tables.get(model.__name__, {}).get(obj_id)
        if obj is not None:
            return obj  # type: ignore[return-value]
        for concrete in model_registry.all():
            if concrete is not model and issubclass(concrete, model):
                obj = self._tables.get(concrete.__name__, {}).get(obj_id)
                if obj is not None:
                    return obj  # type: ignore[return-value]
        return None

    def _iter_rows(self, model: type[M]) -> Iterator[M]:
        """Every row of ``model`` (and subclasses), unsorted and untracked."""
        for concrete in model_registry.all():
            if issubclass(concrete, model):
                yield from self._tables.get(concrete.__name__, {}).values()  # type: ignore[misc]

    def all(self, model: type[M]) -> list[M]:
        """All objects of ``model``, including subclasses, ordered by id."""
        self._note_model_read(model)
        return sorted(self._iter_rows(model), key=lambda o: o.id or 0)

    def filter(self, model: type[M], query: Query | None = None) -> list[M]:
        """Objects of ``model`` matching ``query`` (all if ``None``)."""
        ensure_query(query)
        obs.counter("store.query", store=self.name, model=model.__name__).inc()
        with obs.timed("store.query.latency", store=self.name):
            if query is None:
                return self.all(model)
            fast = self._indexed_filter(model, query)
            if fast is not None:
                return fast
            self._note_query_read(model, query)
            with self._suspend_tracking():
                return sorted(
                    (obj for obj in self._iter_rows(model) if query.matches(obj)),
                    key=lambda o: o.id or 0,
                )

    def _indexed_filter(self, model: type[M], query: Query) -> list[M] | None:
        """Serve single-FK equality queries from the reverse index.

        ``filter(PhysicalInterface, Expr("agg_interface", ==, 7))`` is the
        store's hottest query shape; answering it from the reverse index
        keeps bulk materialization linear.
        """
        from repro.fbnet.query import Expr, Op

        if not isinstance(query, Expr) or query.op is not Op.EQUAL:
            return None
        if "." in query.field:
            return None
        rows: list[M] = []
        served = False
        read_deps: list[str] = []
        fk_values_ok = all(isinstance(rv, int) for rv in query.rvalues)
        for concrete in model_registry.all():
            if not issubclass(concrete, model):
                continue
            field = concrete._meta.fields.get(query.field)
            if field is None:
                continue
            fk = concrete._meta.fk_fields.get(query.field)
            if fk is not None:
                if not fk_values_ok:
                    return None
                served = True
                read_deps.append(concrete.__name__)
                buckets = self._reverse_index.get(
                    (concrete.__name__, query.field), {}
                )
                for rvalue in query.rvalues:
                    for obj_id in buckets.get(rvalue, ()):
                        obj = self._row(concrete.__name__, obj_id)
                        if obj is not None:
                            rows.append(obj)  # type: ignore[arg-type]
            elif field.unique:
                served = True
                read_deps.append(concrete.__name__)
                root = self._family_root(concrete)
                bucket = self._unique_index.get((root, query.field), {})
                for rvalue in query.rvalues:
                    obj_id = bucket.get(self._hashable(rvalue))
                    if obj_id is None:
                        continue
                    obj = self._row(concrete.__name__, obj_id)
                    if obj is not None:
                        rows.append(obj)  # type: ignore[arg-type]
            else:
                # A plain value field needs a full scan.
                return None
        if not served:
            return None
        if self._read_trackers:
            for name in read_deps:
                self._note_field_read(name, query.field, query.rvalues)
        return sorted(set(rows), key=lambda o: o.id or 0)

    def count(self, model: type[M], query: Query | None = None) -> int:
        """Number of matching objects, without materializing a sorted list."""
        ensure_query(query)
        obs.counter("store.query", store=self.name, model=model.__name__).inc()
        if query is None:
            self._note_model_read(model)
            return sum(
                len(self._tables.get(concrete.__name__, ()))
                for concrete in model_registry.all()
                if issubclass(concrete, model)
            )
        fast = self._indexed_filter(model, query)
        if fast is not None:
            return len(fast)
        self._note_query_read(model, query)
        with self._suspend_tracking():
            return sum(1 for obj in self._iter_rows(model) if query.matches(obj))

    def exists(self, model: type[M], query: Query | None = None) -> bool:
        """Whether any object matches; short-circuits on the first hit."""
        ensure_query(query)
        if query is not None:
            fast = self._indexed_filter(model, query)
            if fast is not None:
                return bool(fast)
            self._note_query_read(model, query)
            with self._suspend_tracking():
                return any(query.matches(obj) for obj in self._iter_rows(model))
        self._note_model_read(model)
        return any(True for _ in self._iter_rows(model))

    def first(self, model: type[M], query: Query | None = None) -> M | None:
        ensure_query(query)
        if query is not None:
            fast = self._indexed_filter(model, query)
            if fast is not None:
                return fast[0] if fast else None
            self._note_query_read(model, query)
            with self._suspend_tracking():
                return min(
                    (obj for obj in self._iter_rows(model) if query.matches(obj)),
                    key=lambda o: o.id or 0,
                    default=None,
                )
        self._note_model_read(model)
        return min(self._iter_rows(model), key=lambda o: o.id or 0, default=None)

    # ------------------------------------------------------------------
    # Journal / replication hooks
    # ------------------------------------------------------------------

    def _record(
        self,
        op: ChangeOp,
        obj: Model,
        obj_id: int,
        values: dict[str, Any],
        changed: tuple[str, ...],
    ) -> None:
        assert self._current_txn_id is not None
        obs.counter("store.rows", store=self.name, op=op.value).inc()
        self._pending_records.append(
            ChangeRecord(
                txn_id=self._current_txn_id,
                op=op,
                model=type(obj).__name__,
                obj_id=obj_id,
                values=values,
                changed_fields=changed,
                change_id=flight.current_change_id(),
            )
        )

    @property
    def journal(self) -> list[ChangeRecord]:
        """The committed change journal (read-only view)."""
        return list(self._journal)

    def journal_since(self, position: int) -> list[ChangeRecord]:
        return self._journal[position:]

    @property
    def journal_position(self) -> int:
        return len(self._journal)

    def add_commit_listener(self, fn: Callable[[list[ChangeRecord]], None]) -> None:
        """Register ``fn`` to receive each committed transaction's records."""
        self._commit_listeners.append(fn)

    def apply_record(self, record: ChangeRecord) -> None:
        """Apply a journal record from another store (replication receive).

        Object ids are preserved so that replicas remain id-compatible with
        the master.
        """
        model = model_registry.get(record.model)
        table = self._tables.setdefault(record.model, {})
        if record.op is ChangeOp.CREATE:
            obj = model.__new__(model)
            obj.__dict__.update(record.values)
            obj.id = record.obj_id
            obj._store = self
            table[record.obj_id] = obj
            self._index(obj)
            # Keep local id allocation ahead of replicated ids so a promoted
            # replica never reuses a master-assigned id.
            self._next_id = max(self._next_id, record.obj_id + 1)
        elif record.op is ChangeOp.UPDATE:
            obj = table.get(record.obj_id)
            if obj is None:
                obs.counter(
                    "store.replication.divergence", store=self.name, op="update"
                ).inc()
                raise TransactionError(
                    f"replication update for missing {record.model} id={record.obj_id}"
                )
            self._unindex(obj)
            obj.__dict__.update(record.values)
            self._index(obj)
        else:  # DELETE
            obj = table.pop(record.obj_id, None)
            if obj is None:
                # A delete for a row we never had means this store diverged
                # from the journal's source — surface it like UPDATE does
                # instead of masking the drift.
                obs.counter(
                    "store.replication.divergence", store=self.name, op="delete"
                ).inc()
                raise TransactionError(
                    f"replication delete for missing {record.model} id={record.obj_id}"
                )
            self._unindex(obj)
            obj.id = None
            obj._store = None
        if self._durability is not None and not self._recovering:
            self._durability.log_applied(record)
        self._journal.append(record)

    # ------------------------------------------------------------------
    # Durability (see repro.fbnet.durability)
    # ------------------------------------------------------------------

    def attach_durability(
        self,
        root: Any,
        *,
        snapshot_every: int | None = None,
        fsync: bool = False,
    ):
        """Journal every commit to a write-ahead log under ``root``.

        If this store already has history, a snapshot is written first so
        the WAL only needs to cover what follows.  Returns the attached
        :class:`~repro.fbnet.durability.DurabilityEngine`.
        """
        from repro.fbnet.durability import DurabilityEngine

        if self._durability is not None:
            raise TransactionError(f"store {self.name!r} already has durability")
        self._durability = DurabilityEngine(
            self, root, snapshot_every=snapshot_every, fsync=fsync
        )
        return self._durability

    def detach_durability(self) -> None:
        """Stop journaling; the files written so far stay recoverable."""
        if self._durability is not None:
            self._durability.close()
            self._durability = None

    @property
    def durability(self):
        """The attached durability engine, or ``None`` when volatile."""
        return self._durability

    @classmethod
    def recover(
        cls,
        root: Any,
        *,
        name: str | None = None,
        attach: bool = True,
        snapshot_every: int | None = None,
        fsync: bool = False,
    ) -> ObjectStore:
        """Rebuild a store from the durability root a crashed one left.

        Loads the newest valid snapshot, replays the WAL tail (truncating
        a torn tail frame), and returns a store whose tables, indexes, and
        journal match the crashed store at its last durable commit.
        """
        from repro.fbnet.durability import recover_store

        return recover_store(
            root,
            name=name,
            attach=attach,
            snapshot_every=snapshot_every,
            fsync=fsync,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def table_sizes(self) -> dict[str, int]:
        """Row count per concrete model (only non-empty tables)."""
        return {name: len(rows) for name, rows in self._tables.items() if rows}

    def total_objects(self) -> int:
        return sum(len(rows) for rows in self._tables.values())

    def _digest_tables(self) -> dict[str, dict[int, Model]]:
        """Every table, as one mapping — the fingerprinting surface.

        A sharded store overrides this to merge its partitions, so
        :func:`repro.fbnet.durability.store_digest` compares sharded and
        single stores on equal footing.
        """
        return self._tables

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ObjectStore {self.name!r} objects={self.total_objects()}>"
