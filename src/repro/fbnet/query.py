"""The FBNet query language (paper section 4.2.1).

A query is a tree of *expressions* of the form ``<field> <op> <rvalue>``
where ``field`` is a local or indirect (dotted) value field, ``op`` is a
comparison operator, and ``rvalue`` is a list of values to compare against.
Expressions compose with logical ``And``/``Or``/``Not`` into arbitrarily
complex queries.

Dotted field paths traverse relationship fields — forwards through foreign
keys (``linecard.device.name``) and backwards through reverse connections
(``device.linecards.slot``).  A reverse hop fans out to many objects, in
which case an expression matches if *any* leaf value matches.
"""

from __future__ import annotations

import re
from enum import Enum
from typing import TYPE_CHECKING, Any

from repro.common.errors import QueryError
from repro.fbnet.fields import ForeignKey

if TYPE_CHECKING:
    from repro.fbnet.base import Model

__all__ = [
    "And",
    "Expr",
    "Not",
    "Op",
    "Or",
    "Query",
    "indexable_equalities",
    "resolve_path",
]


class Op(Enum):
    """Comparison operators available in query expressions."""

    EQUAL = "=="
    NOT_EQUAL = "!="
    REGEXP = "=~"
    GT = ">"
    GTE = ">="
    LT = "<"
    LTE = "<="
    CONTAINS = "contains"
    STARTSWITH = "startswith"
    IS_NULL = "isnull"


_ORDERED_OPS = {Op.GT, Op.GTE, Op.LT, Op.LTE}


def resolve_path(obj: Model, path: str) -> list[Any]:
    """Resolve a dotted field ``path`` from ``obj`` to its leaf values.

    Forward FK hops yield at most one next object; reverse-relation hops
    fan out.  Missing links (null FKs) contribute no leaves.  The final
    segment must be a value field (or ``id``); enum values are unwrapped
    to their raw ``.value`` for comparison.
    """
    from repro.fbnet.base import model_registry

    parts = path.split(".")
    current: list[Model] = [obj]
    for index, part in enumerate(parts):
        is_last = index == len(parts) - 1
        next_objects: list[Model] = []
        leaves: list[Any] = []
        for node in current:
            meta = type(node)._meta
            if part == "id":
                leaves.append(node.id)
                continue
            field = meta.fields.get(part)
            if isinstance(field, ForeignKey):
                related = node.related(part)
                if related is not None:
                    if is_last:
                        # Terminal FK segment compares against the raw id.
                        leaves.append(related.id)
                    else:
                        next_objects.append(related)
                continue
            if field is not None:
                value = node.__dict__.get(part)
                if isinstance(value, Enum):
                    value = value.value
                leaves.append(value)
                continue
            reverse = model_registry.reverse_relations(type(node))
            if part in reverse:
                next_objects.extend(node.__getattr__(part))
                continue
            raise QueryError(
                f"unknown field {part!r} in path {path!r} on {type(node).__name__}"
            )
        if is_last:
            if next_objects and not leaves:
                raise QueryError(
                    f"path {path!r} ends on a relationship; "
                    "append a value field (e.g. '.name')"
                )
            return leaves
        current = next_objects
        if not current:
            return []
    return []


class Query:
    """Abstract base of all query nodes."""

    def matches(self, obj: Model) -> bool:
        raise NotImplementedError

    def to_wire(self) -> dict[str, Any]:
        """Serialize to a JSON-compatible dict for the RPC layer."""
        raise NotImplementedError

    @staticmethod
    def from_wire(data: dict[str, Any] | None) -> Query | None:
        """Reconstruct a query tree from :meth:`to_wire` output."""
        if data is None:
            return None
        kind = data.get("kind")
        if kind == "expr":
            # Expr validates the operator string itself (QueryError on
            # unknown ops, rather than a bare ValueError from Op()).
            return Expr(data["field"], data["op"], list(data["rvalues"]))
        if kind == "and":
            return And(*[Query.from_wire(child) for child in data["children"]])
        if kind == "or":
            return Or(*[Query.from_wire(child) for child in data["children"]])
        if kind == "not":
            return Not(Query.from_wire(data["child"]))
        raise QueryError(f"bad wire query node: {data!r}")

    def __and__(self, other: Query) -> Query:
        return And(self, other)

    def __or__(self, other: Query) -> Query:
        return Or(self, other)

    def __invert__(self) -> Query:
        return Not(self)


class Expr(Query):
    """A single ``<field> <op> <rvalue>`` comparison.

    ``rvalue`` may be a scalar or a list; for ``EQUAL``/``NOT_EQUAL``/
    ``REGEXP`` a list means "any of" (per the paper, rvalue is a list of
    values to compare against).  Ordered operators require exactly one
    rvalue.
    """

    def __init__(self, field: str, op: Op | str, rvalue: Any = None):
        if not isinstance(op, Op):
            try:
                op = Op(op)
            except ValueError:
                raise QueryError(f"unknown operator {op!r}") from None
        self.field = field
        self.op = op
        if op is Op.IS_NULL:
            # A wire round-trip delivers the bool wrapped in a one-element
            # list; unwrap it, otherwise bool([False]) would silently flip
            # isnull=False to isnull=True.
            if isinstance(rvalue, (list, tuple)) and len(rvalue) == 1:
                rvalue = rvalue[0]
            self.rvalues: tuple[Any, ...] = (bool(rvalue) if rvalue is not None else True,)
        elif isinstance(rvalue, (list, tuple, set, frozenset)):
            self.rvalues = tuple(rvalue)
        else:
            self.rvalues = (rvalue,)
        if op in _ORDERED_OPS and len(self.rvalues) != 1:
            raise QueryError(f"{op.name} takes exactly one rvalue")
        if not self.rvalues and op is not Op.IS_NULL:
            raise QueryError("empty rvalue list")
        if op is Op.REGEXP:
            try:
                self._patterns = [re.compile(str(p)) for p in self.rvalues]
            except re.error as exc:
                raise QueryError(f"bad regexp in query: {exc}") from None

    def matches(self, obj: Model) -> bool:
        leaves = resolve_path(obj, self.field)
        if self.op is Op.IS_NULL:
            want_null = bool(self.rvalues[0])
            is_null = not leaves or all(leaf is None for leaf in leaves)
            return is_null == want_null
        if self.op is Op.NOT_EQUAL:
            # NOT_EQUAL is the negation of EQUAL over the leaf set.
            return not any(self._compare_equal(leaf) for leaf in leaves)
        return any(self._compare(leaf) for leaf in leaves)

    def _compare_equal(self, leaf: Any) -> bool:
        return any(leaf == rv for rv in self.rvalues)

    def _compare(self, leaf: Any) -> bool:
        op = self.op
        if op is Op.EQUAL:
            return self._compare_equal(leaf)
        if op is Op.REGEXP:
            if leaf is None:
                return False
            return any(p.search(str(leaf)) for p in self._patterns)
        if op is Op.CONTAINS:
            if leaf is None:
                return False
            return any(str(rv) in str(leaf) for rv in self.rvalues)
        if op is Op.STARTSWITH:
            if leaf is None:
                return False
            return any(str(leaf).startswith(str(rv)) for rv in self.rvalues)
        if op in _ORDERED_OPS:
            if leaf is None:
                return False
            rv = self.rvalues[0]
            try:
                if op is Op.GT:
                    return leaf > rv
                if op is Op.GTE:
                    return leaf >= rv
                if op is Op.LT:
                    return leaf < rv
                return leaf <= rv
            except TypeError:
                raise QueryError(
                    f"cannot order {type(leaf).__name__} against {type(rv).__name__} "
                    f"for field {self.field!r}"
                ) from None
        raise QueryError(f"unhandled operator {op}")  # pragma: no cover

    def to_wire(self) -> dict[str, Any]:
        return {
            "kind": "expr",
            "field": self.field,
            "op": self.op.value,
            "rvalues": list(self.rvalues),
        }

    def __repr__(self) -> str:
        return f"Expr({self.field!r} {self.op.value} {list(self.rvalues)!r})"


class And(Query):
    """True when every child query matches."""

    def __init__(self, *children: Query):
        if not children:
            raise QueryError("And() requires at least one child")
        for child in children:
            if not isinstance(child, Query):
                raise QueryError(
                    f"And() children must be Query nodes, got {child!r}"
                )
        self.children = children

    def matches(self, obj: Model) -> bool:
        return all(child.matches(obj) for child in self.children)

    def to_wire(self) -> dict[str, Any]:
        return {"kind": "and", "children": [c.to_wire() for c in self.children]}

    def __repr__(self) -> str:
        return f"And({', '.join(map(repr, self.children))})"


class Or(Query):
    """True when any child query matches."""

    def __init__(self, *children: Query):
        if not children:
            raise QueryError("Or() requires at least one child")
        for child in children:
            if not isinstance(child, Query):
                raise QueryError(
                    f"Or() children must be Query nodes, got {child!r}"
                )
        self.children = children

    def matches(self, obj: Model) -> bool:
        return any(child.matches(obj) for child in self.children)

    def to_wire(self) -> dict[str, Any]:
        return {"kind": "or", "children": [c.to_wire() for c in self.children]}

    def __repr__(self) -> str:
        return f"Or({', '.join(map(repr, self.children))})"


class Not(Query):
    """True when the child query does not match."""

    def __init__(self, child: Query):
        if not isinstance(child, Query):
            # Catch a malformed wire tree (e.g. {"kind": "not", "child":
            # null}) at parse time rather than AttributeError at match time.
            raise QueryError(f"Not() requires a Query child, got {child!r}")
        self.child = child

    def matches(self, obj: Model) -> bool:
        return not self.child.matches(obj)

    def to_wire(self) -> dict[str, Any]:
        return {"kind": "not", "child": self.child.to_wire()}

    def __repr__(self) -> str:
        return f"Not({self.child!r})"


def ensure_query(query: Query | None) -> Query | None:
    """Validate the ``query`` argument of read APIs."""
    if query is not None and not isinstance(query, Query):
        raise QueryError(f"expected a Query, got {type(query).__name__}")
    return query


def indexable_equalities(query: Query) -> tuple[Expr, ...]:
    """The direct equality children an ``And`` query can be narrowed by.

    Planner hint: an ``And``'s result set is a subset of any one child's
    matches, so a child that is a plain (non-dotted) equality expression
    may be servable from a unique or reverse index — the planner then
    filters those candidates with the full query instead of scanning
    every row.  For a bare equality ``Expr`` the expression itself is
    returned; ``Or``/``Not`` (and dotted or non-equality children) offer
    no sound narrowing and yield nothing.
    """
    if isinstance(query, Expr):
        children: tuple[Query, ...] = (query,)
    elif isinstance(query, And):
        children = query.children
    else:
        return ()
    return tuple(
        child
        for child in children
        if isinstance(child, Expr)
        and child.op is Op.EQUAL
        and "." not in child.field
    )
