"""Durable FBNet: write-ahead log, snapshots, and crash-consistent recovery.

The paper's FBNet sits on a durable MySQL master (section 4.3.1) — a
Robotron process can die and come back with the Desired state intact.
This module gives the in-process :class:`~repro.fbnet.store.ObjectStore`
the same property:

* every committed transaction is appended to a **write-ahead log** before
  it becomes visible in memory — one length-prefixed, CRC-checksummed
  frame per commit, carrying the transaction's
  :class:`~repro.fbnet.store.ChangeRecord` batch in a deterministic wire
  encoding (the same encoding the future sharding wire format will use);
* periodic **snapshots** serialize the full store state (the journal is
  the state: replaying it rebuilds tables, indexes, and shadow values
  bit-identically — exactly what replication's resync already proves)
  together with the journal position they cover, after which the WAL
  rotates to a fresh segment and covered segments are pruned;
* **recovery** (:func:`recover_store`, surfaced as
  ``ObjectStore.recover`` / ``Robotron.recover``) loads the latest valid
  snapshot, replays the WAL tail on top, and truncates a torn tail frame
  — the store that comes back has object tables, unique/reverse indexes,
  and change journal identical to the pre-crash store at its last
  durable commit.

Crash points are wired through :mod:`repro.faults` so seeded chaos runs
can kill the "process" at every interesting instant:

* ``wal.append_torn`` — power dies mid-frame: a prefix of the frame
  reaches disk (recovery must detect and truncate it; the commit is lost);
* ``wal.append_crash`` — the frame is durable but the process dies before
  the in-memory apply (recovery must replay it; the commit survives);
* ``wal.rotate_crash`` — the snapshot is written but the process dies
  before the WAL rotates (recovery must not double-apply the overlap).

All three raise :class:`~repro.common.errors.ProcessCrash`, which test
harnesses treat as process death: discard the store, recover from disk.

File layout under one durability root directory::

    wal-000000000000.log   # segment; header frame records its base position
    wal-000000000421.log   # segment opened by a rotation at position 421
    snap-000000000421.snap # snapshot covering journal positions [0, 421)

Frame format (everywhere): ``u32 body length | u32 crc32(body) | body``,
with canonical-JSON bodies (sorted keys, no whitespace) so identical
state encodes to identical bytes.
"""

from __future__ import annotations

import importlib
import json
import zlib
from enum import Enum
from hashlib import sha256
from pathlib import Path
from typing import TYPE_CHECKING, Any, BinaryIO

from repro import faults, obs
from repro.obs import flight
from repro.common.errors import DurabilityError, ProcessCrash
from repro.fbnet.store import ChangeOp, ChangeRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store imports us lazily)
    from repro.fbnet.store import ObjectStore

__all__ = [
    "DurabilityEngine",
    "decode_record",
    "encode_record",
    "decode_value",
    "encode_value",
    "frame",
    "recover_store",
    "scan_frames",
    "store_digest",
]

#: 8-byte magic prefixes identifying the two file kinds (version baked in).
WAL_MAGIC = b"FBWAL\x00\x00\x01"
SNAP_MAGIC = b"FBSNP\x00\x00\x01"

_FRAME_HEADER = 8  # u32 length + u32 crc32
#: Sanity cap: a frame body longer than this is treated as corruption
#: rather than an allocation request.
_MAX_FRAME = 256 * 1024 * 1024


# ---------------------------------------------------------------------------
# Wire encoding: values, records, frames
# ---------------------------------------------------------------------------


def _canonical(payload: Any) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace, ASCII escapes."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode()


def encode_value(value: Any) -> Any:
    """Lower a field value to a JSON-representable form, reversibly.

    Enum members (``EnumField`` stores the member, not the raw value)
    become ``{"$enum": "module:QualName", "$value": ...}``; a plain dict
    that could be mistaken for one of our tagged forms (any key starting
    with ``$``) is wrapped as ``{"$dict": {...}}`` so user data can never
    shadow the tags.
    """
    if isinstance(value, Enum):
        cls = type(value)
        return {
            "$enum": f"{cls.__module__}:{cls.__qualname__}",
            "$value": encode_value(value.value),
        }
    if isinstance(value, dict):
        encoded = {key: encode_value(item) for key, item in value.items()}
        if any(isinstance(key, str) and key.startswith("$") for key in value):
            return {"$dict": encoded}
        return encoded
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    return value


_enum_cache: dict[str, type[Enum]] = {}


def _resolve_enum(ref: str) -> type[Enum]:
    cached = _enum_cache.get(ref)
    if cached is not None:
        return cached
    module_name, _, qualname = ref.partition(":")
    try:
        target: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
    except (ImportError, AttributeError) as exc:
        raise DurabilityError(f"cannot resolve enum {ref!r}: {exc}") from None
    if not (isinstance(target, type) and issubclass(target, Enum)):
        raise DurabilityError(f"{ref!r} is not an Enum type")
    _enum_cache[ref] = target
    return target


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, dict):
        keys = set(value)
        if keys == {"$enum", "$value"}:
            return _resolve_enum(value["$enum"])(decode_value(value["$value"]))
        if keys == {"$dict"}:
            inner = value["$dict"]
            return {key: decode_value(item) for key, item in inner.items()}
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


def record_payload(record: ChangeRecord) -> dict[str, Any]:
    """The JSON-representable form of one journal record."""
    return {
        "txn_id": record.txn_id,
        "op": record.op.value,
        "model": record.model,
        "obj_id": record.obj_id,
        "values": {k: encode_value(v) for k, v in record.values.items()},
        "changed_fields": list(record.changed_fields),
        "change_id": record.change_id,
    }


def record_from_payload(payload: dict[str, Any]) -> ChangeRecord:
    try:
        return ChangeRecord(
            txn_id=payload["txn_id"],
            op=ChangeOp(payload["op"]),
            model=payload["model"],
            obj_id=payload["obj_id"],
            values={k: decode_value(v) for k, v in payload["values"].items()},
            changed_fields=tuple(payload["changed_fields"]),
            change_id=payload.get("change_id", ""),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise DurabilityError(f"malformed change record payload: {exc}") from None


def encode_record(record: ChangeRecord) -> bytes:
    """Deterministic wire bytes for one :class:`ChangeRecord`."""
    return _canonical(record_payload(record))


def decode_record(data: bytes) -> ChangeRecord:
    """Invert :func:`encode_record`."""
    try:
        payload = json.loads(data.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DurabilityError(f"malformed change record bytes: {exc}") from None
    if not isinstance(payload, dict):
        raise DurabilityError("change record bytes must encode an object")
    return record_from_payload(payload)


def frame(body: bytes) -> bytes:
    """Length-prefix and checksum ``body``: ``u32 len | u32 crc32 | body``."""
    header = len(body).to_bytes(4, "big") + (zlib.crc32(body) & 0xFFFFFFFF).to_bytes(
        4, "big"
    )
    return header + body


def scan_frames(data: bytes, offset: int = 0) -> tuple[list[bytes], int, bool]:
    """Walk frames in ``data`` starting at ``offset``.

    Returns ``(bodies, valid_end, torn)``: every complete, checksummed
    frame body in order; the offset just past the last valid frame; and
    whether trailing bytes exist that do not form a valid frame (a torn
    tail — truncated header, short body, or checksum mismatch).
    """
    bodies: list[bytes] = []
    position = offset
    total = len(data)
    while position < total:
        if total - position < _FRAME_HEADER:
            return bodies, position, True
        length = int.from_bytes(data[position : position + 4], "big")
        if length > _MAX_FRAME:
            return bodies, position, True
        crc = int.from_bytes(data[position + 4 : position + 8], "big")
        body_start = position + _FRAME_HEADER
        body = data[body_start : body_start + length]
        if len(body) != length or (zlib.crc32(body) & 0xFFFFFFFF) != crc:
            return bodies, position, True
        bodies.append(body)
        position = body_start + length
    return bodies, position, False


# ---------------------------------------------------------------------------
# Directory layout helpers
# ---------------------------------------------------------------------------


def _segment_path(root: Path, base: int) -> Path:
    return root / f"wal-{base:012d}.log"


def _snapshot_path(root: Path, position: int) -> Path:
    return root / f"snap-{position:012d}.snap"


def wal_segments(root: Path) -> list[Path]:
    """WAL segment files under ``root``, ordered by base position."""
    return sorted(root.glob("wal-*.log"))


def snapshot_files(root: Path) -> list[Path]:
    """Snapshot files under ``root``, ordered newest (highest position) first."""
    return sorted(root.glob("snap-*.snap"), reverse=True)


def _load_json_body(body: bytes, kind: str) -> dict[str, Any] | None:
    try:
        payload = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict) or payload.get("kind") != kind:
        return None
    return payload


def load_snapshot(path: Path) -> dict[str, Any] | None:
    """Parse and validate one snapshot file; ``None`` when invalid."""
    try:
        data = path.read_bytes()
    except OSError:
        return None
    if not data.startswith(SNAP_MAGIC):
        return None
    bodies, _end, torn = scan_frames(data, len(SNAP_MAGIC))
    if torn or len(bodies) != 1:
        return None
    return _load_json_body(bodies[0], "snapshot")


# ---------------------------------------------------------------------------
# The engine: WAL appends + snapshots on a live store
# ---------------------------------------------------------------------------


class DurabilityEngine:
    """The durability sidecar of one :class:`ObjectStore`.

    Created through :meth:`ObjectStore.attach_durability` (fresh stores)
    or by :func:`recover_store` (reattach after recovery).  The store
    calls :meth:`log_commit` from ``_commit()`` *before* extending its
    in-memory journal — the WAL append is the durability point — and
    :meth:`log_applied` from ``apply_record()`` on the replication
    receive path.
    """

    def __init__(
        self,
        store: ObjectStore,
        root: str | Path,
        *,
        snapshot_every: int | None = None,
        fsync: bool = False,
        _recovered: bool = False,
    ):
        self.store = store
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if snapshot_every is not None and snapshot_every < 1:
            raise DurabilityError("snapshot_every must be >= 1 (or None)")
        #: Auto-snapshot after this many commits (None = manual only).
        self.snapshot_every = snapshot_every
        #: fsync after every append.  Off by default: the simulated crash
        #: model is process death, for which flushing to the OS suffices;
        #: a real deployment would turn this on (and eat the latency).
        self.fsync = fsync
        self._commits_since_snapshot = 0
        self._file: BinaryIO | None = None
        #: Journal position covered by the WAL + snapshots so far.
        self._position = store.journal_position

        existing_segments = wal_segments(self.root)
        existing_snaps = snapshot_files(self.root)
        if not _recovered and (existing_segments or existing_snaps):
            raise DurabilityError(
                f"durability root {self.root} already holds WAL/snapshot files; "
                "recover the store from it (ObjectStore.recover) instead of "
                "attaching a new one"
            )
        if _recovered and existing_segments:
            # Recovery replayed (and possibly truncated) the last segment;
            # keep appending to it so positions stay contiguous.
            self._file = existing_segments[-1].open("ab")
        elif self._position:
            # Attaching to a store with history: snapshot it so recovery
            # has the prefix the WAL will not contain.
            self.snapshot()
        else:
            self._open_segment(0)

    # -- segment plumbing ----------------------------------------------------

    def _open_segment(self, base: int) -> None:
        if self._file is not None:
            self._file.close()
        path = _segment_path(self.root, base)
        self._file = path.open("wb")
        header = _canonical(
            {"kind": "wal-header", "base": base, "store": self.store.name, "version": 1}
        )
        self._file.write(WAL_MAGIC + frame(header))
        self._flush()

    def _flush(self) -> None:
        assert self._file is not None
        self._file.flush()
        if self.fsync:
            import os

            os.fsync(self._file.fileno())

    @property
    def position(self) -> int:
        """Number of journal records made durable so far."""
        return self._position

    def close(self) -> None:
        """Flush and close the active segment (the engine is done)."""
        if self._file is not None:
            self._flush()
            self._file.close()
            self._file = None

    # -- the write path ------------------------------------------------------

    def log_commit(self, records: list[ChangeRecord]) -> None:
        """Make one committed transaction durable (called from ``_commit``).

        The store has *not* yet extended its in-memory journal when this
        runs: a crash after the append loses only volatile state that
        recovery rebuilds from this very frame.
        """
        if self.snapshot_every and self._commits_since_snapshot >= self.snapshot_every:
            self.snapshot()
        body = _canonical(
            {"kind": "commit", "records": [record_payload(r) for r in records]}
        )
        self._append_frame(frame(body), len(records))
        self._commits_since_snapshot += 1

    def log_applied(self, record: ChangeRecord) -> None:
        """Make one replication-applied record durable (``apply_record``)."""
        if self.snapshot_every and self._commits_since_snapshot >= self.snapshot_every:
            self.snapshot()
        body = _canonical({"kind": "commit", "records": [record_payload(record)]})
        self._append_frame(frame(body), 1)
        self._commits_since_snapshot += 1

    def _append_frame(self, data: bytes, record_count: int) -> None:
        assert self._file is not None
        if faults.should_inject("wal.append_torn", store=self.store.name):
            # Power loss mid-write: a prefix of the frame (header plus
            # half the body) reaches disk.  Recovery must truncate it.
            cut = _FRAME_HEADER + max(0, (len(data) - _FRAME_HEADER) // 2)
            self._file.write(data[:cut])
            self._flush()
            obs.counter("store.wal.torn_writes", store=self.store.name).inc()
            raise ProcessCrash("simulated power loss mid-WAL-frame")
        self._file.write(data)
        self._flush()
        self._position += record_count
        obs.counter("store.wal.appends", store=self.store.name).inc()
        obs.counter("store.wal.records", store=self.store.name).inc(record_count)
        obs.counter("store.wal.bytes", store=self.store.name).inc(len(data))
        if faults.should_inject("wal.append_crash", store=self.store.name):
            # The frame is durable; the process dies before the in-memory
            # apply.  Recovery must surface this commit.
            raise ProcessCrash("simulated process death after WAL append")

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> Path:
        """Write a snapshot of the store, then rotate the WAL past it.

        The snapshot is written to a temp file and atomically renamed, so
        a crash mid-write leaves the previous snapshot authoritative.  The
        ``wal.rotate_crash`` point fires between the rename and the
        rotation — the window where snapshot and WAL overlap and recovery
        must not apply the covered records twice.
        """
        store = self.store
        position = store.journal_position
        payload = {
            "kind": "snapshot",
            "store": store.name,
            "position": position,
            "next_id": store._next_id,
            "next_txn_id": store._next_txn_id,
            "records": [record_payload(r) for r in store._journal],
        }
        data = SNAP_MAGIC + frame(_canonical(payload))
        final = _snapshot_path(self.root, position)
        tmp = final.with_suffix(".tmp")
        tmp.write_bytes(data)
        tmp.replace(final)
        obs.counter("store.snapshot.writes", store=store.name).inc()
        obs.counter("store.snapshot.bytes", store=store.name).inc(len(data))
        flight.record(
            "store.snapshot",
            phase="store",
            detail=f"position {position}, {len(data)} bytes",
        )
        if faults.should_inject("wal.rotate_crash", store=store.name):
            raise ProcessCrash(
                "simulated process death between snapshot write and WAL rotation"
            )
        self._rotate(position)
        self._commits_since_snapshot = 0
        return final

    def _rotate(self, base: int) -> None:
        self._open_segment(base)
        self._prune()

    def _prune(self) -> None:
        """Drop files made redundant by snapshot coverage.

        The newest *two* snapshots are kept — if the latest ever fails
        validation, recovery falls back to the previous one — so segments
        are prunable only below the *older* kept snapshot's position.
        """
        snaps = snapshot_files(self.root)
        keep = snaps[:2]
        for stale in snaps[2:]:
            stale.unlink(missing_ok=True)
        if len(keep) < 2:
            # No fallback snapshot yet: every segment must stay so recovery
            # can still rebuild from position 0 if the only snapshot is bad.
            return
        keep_floor = min(int(path.stem.split("-")[1]) for path in keep)
        segments = wal_segments(self.root)
        for segment, successor in zip(segments, segments[1:]):
            successor_base = int(successor.stem.split("-")[1])
            if successor_base <= keep_floor:
                segment.unlink(missing_ok=True)


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------


def _scan_segment(path: Path) -> tuple[dict[str, Any], list[bytes], int, bool]:
    """Read one segment: (header, commit bodies, valid byte length, torn?)."""
    data = path.read_bytes()
    if not data.startswith(WAL_MAGIC):
        raise DurabilityError(f"{path.name}: bad WAL magic")
    bodies, end, torn = scan_frames(data, len(WAL_MAGIC))
    if not bodies:
        if torn:
            # Not even the header frame survived; treat the whole file as
            # a torn tail with an implicit base parsed from the filename.
            base = int(path.stem.split("-")[1])
            return {"kind": "wal-header", "base": base}, [], len(WAL_MAGIC), True
        raise DurabilityError(f"{path.name}: missing WAL header frame")
    header = _load_json_body(bodies[0], "wal-header")
    if header is None or not isinstance(header.get("base"), int):
        raise DurabilityError(f"{path.name}: malformed WAL header frame")
    return header, bodies[1:], end, torn


def recover_store(
    root: str | Path,
    *,
    name: str | None = None,
    attach: bool = True,
    snapshot_every: int | None = None,
    fsync: bool = False,
    into: ObjectStore | None = None,
) -> ObjectStore:
    """Rebuild an :class:`ObjectStore` from its durability root.

    Loads the newest snapshot that validates (magic + checksum), replays
    it, then replays every WAL record past the snapshot position.  A torn
    frame at the tail of the *last* segment is truncated (that commit
    never became durable); an invalid frame anywhere else is corruption
    and raises :class:`DurabilityError`, as does a coverage gap between
    the snapshot and the surviving segments.

    With ``attach`` (the default) the recovered store continues journaling
    into the same root, appending to the surviving segment.

    ``into`` replays history into a caller-provided *empty* store instead
    of constructing a fresh one — how a sharded store recovers each of
    its partitions (the partition object needs router wiring a plain
    constructor cannot provide).
    """
    from repro.fbnet.store import ObjectStore

    root = Path(root)
    if not root.is_dir():
        raise DurabilityError(f"durability root {root} does not exist")

    snapshot: dict[str, Any] | None = None
    for candidate in snapshot_files(root):
        snapshot = load_snapshot(candidate)
        if snapshot is not None:
            break
        obs.counter("store.recovery.invalid_snapshots").inc()

    segments = wal_segments(root)
    store_name = name or (snapshot or {}).get("store")
    if store_name is None and segments:
        header, _bodies, _end, _torn = _scan_segment(segments[0])
        store_name = header.get("store")
    if into is not None:
        if into.journal_position or into.total_objects():
            raise DurabilityError("recover_store(into=...) needs an empty store")
        store = into
    else:
        store = ObjectStore(name=store_name or "fbnet")

    store._recovering = True
    torn_truncated = 0
    try:
        snap_next_id = 1
        snap_next_txn = 1
        if snapshot is not None:
            for payload in snapshot["records"]:
                store.apply_record(record_from_payload(payload))
            if store.journal_position != snapshot["position"]:
                raise DurabilityError(
                    f"snapshot claims position {snapshot['position']} but carries "
                    f"{store.journal_position} records"
                )
            snap_next_id = snapshot.get("next_id", 1)
            snap_next_txn = snapshot.get("next_txn_id", 1)

        for index, segment in enumerate(segments):
            header, bodies, valid_end, torn = _scan_segment(segment)
            last = index == len(segments) - 1
            if torn and not last:
                raise DurabilityError(
                    f"{segment.name}: invalid frame mid-history (not the WAL tail)"
                )
            position = header["base"]
            for body in bodies:
                commit = _load_json_body(body, "commit")
                if commit is None:
                    raise DurabilityError(f"{segment.name}: malformed commit frame")
                for payload in commit["records"]:
                    if position > store.journal_position:
                        raise DurabilityError(
                            f"{segment.name}: WAL coverage gap at position {position} "
                            f"(store is at {store.journal_position})"
                        )
                    if position == store.journal_position:
                        store.apply_record(record_from_payload(payload))
                    position += 1
            if torn and last:
                with segment.open("r+b") as handle:
                    handle.truncate(valid_end)
                torn_truncated += 1
                obs.counter("store.wal.torn_truncated", store=store.name).inc()
                flight.record(
                    "store.wal.truncated",
                    phase="store",
                    detail=f"{segment.name} truncated to {valid_end} bytes",
                )
    finally:
        store._recovering = False

    tail_txn = store._journal[-1].txn_id if store._journal else 0
    store._next_txn_id = max(snap_next_txn, tail_txn + 1, store._next_txn_id)
    store._next_id = max(store._next_id, snap_next_id)

    obs.counter("store.recovery.runs", store=store.name).inc()
    obs.counter("store.recovery.records", store=store.name).inc(
        store.journal_position
    )
    flight.record(
        "store.recovered",
        phase="store",
        verdict="ok",
        detail=(
            f"{store.journal_position} records, "
            f"{torn_truncated} torn frame(s) truncated"
        ),
    )
    if attach:
        store._durability = DurabilityEngine(
            store,
            root,
            snapshot_every=snapshot_every,
            fsync=fsync,
            _recovered=True,
        )
    return store


# ---------------------------------------------------------------------------
# State fingerprinting (bit-identity checks for tests and chaos CI)
# ---------------------------------------------------------------------------


def store_digest(store: ObjectStore) -> str:
    """A sha256 over the store's observable state.

    Covers every table row's field values, the full change journal, and
    the id allocator — two stores with equal digests are interchangeable
    for every read API and for replication.  The store *name* and the
    transaction counter are deliberately excluded: a recovered store may
    be renamed, and aborted (never-durable) transactions legitimately
    consume counter values that no journal record witnesses.
    """
    tables = {
        model: {
            str(obj_id): encode_value(obj.clone_values())
            for obj_id, obj in sorted(rows.items())
        }
        for model, rows in sorted(store._digest_tables().items())
        if rows
    }
    payload = {
        "tables": tables,
        "journal": [record_payload(r) for r in store._journal],
        "next_id": store._next_id,
    }
    return sha256(_canonical(payload)).hexdigest()
