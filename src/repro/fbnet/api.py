"""FBNet read and write APIs (paper section 4.2).

The read API has a standard declaration per object type —
``get_<ObjectType>(fields, query)`` — where ``fields`` lists local or
indirectly-referenced value fields (dotted paths through relationship
fields and reverse connections) and ``query`` is an expression tree from
:mod:`repro.fbnet.query`.

The write API provides high-level, multi-object operations, each wrapped
in a single transaction so no partial state is ever visible (section
4.3.2).  The portmap change-plan API of section 4.2.2 lives in
:mod:`repro.design.portmap` and is re-exported through :class:`WriteApi`.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.common.errors import QueryError
from repro.fbnet.base import Model, model_registry
from repro.fbnet.query import Query, ensure_query, resolve_path
from repro.fbnet.store import ObjectStore

__all__ = ["ReadApi", "WriteApi"]


class ReadApi:
    """Per-object-type read operations over an :class:`ObjectStore`.

    Besides the generic :meth:`get`, each registered model gets an
    auto-generated ``get_<ModelName>`` method (matching the paper's
    auto-generated Thrift APIs)::

        api.get_Linecard(fields=["slot", "device.name"], query=...)
    """

    def __init__(self, store: ObjectStore):
        self._store = store

    def get(
        self,
        model_name: str,
        fields: Sequence[str] | None = None,
        query: Query | None = None,
    ) -> list[dict[str, Any]]:
        """Fetch objects of ``model_name`` matching ``query``.

        Returns one dict per object containing ``id`` plus the requested
        ``fields``.  A dotted field that traverses a reverse connection
        yields a list of leaf values; a single-valued path yields a scalar.
        When ``fields`` is None, all local value fields are returned.
        """
        model = self._model(model_name)
        ensure_query(query)
        rows = self._store.filter(model, query)
        if fields is None:
            return [obj.to_dict() for obj in rows]
        result = []
        for obj in rows:
            record: dict[str, Any] = {"id": obj.id}
            for path in fields:
                record[path] = self._project(obj, path)
            result.append(record)
        return result

    def count(self, model_name: str, query: Query | None = None) -> int:
        """Count objects of ``model_name`` matching ``query``."""
        return self._store.count(self._model(model_name), query)

    def _project(self, obj: Model, path: str) -> Any:
        leaves = resolve_path(obj, path)
        multi = self._is_multi_valued(type(obj), path)
        if multi:
            return leaves
        if not leaves:
            return None
        return leaves[0]

    @staticmethod
    def _is_multi_valued(model: type[Model], path: str) -> bool:
        """Whether ``path`` crosses a reverse connection (fans out)."""
        current: list[type[Model]] = [model]
        for part in path.split("."):
            next_models: list[type[Model]] = []
            for klass in current:
                field = klass._meta.fields.get(part)
                if field is not None:
                    fk = klass._meta.fk_fields.get(part)
                    if fk is not None:
                        next_models.append(fk.to)
                    continue
                if part == "id":
                    continue
                reverse = model_registry.reverse_relations(klass)
                if part in reverse:
                    return True
            current = next_models or current
        return False

    def _model(self, model_name: str) -> type[Model]:
        # resolve() also accepts abstract family names ("Device"), which
        # the store can filter even though only concrete models register.
        try:
            return model_registry.resolve(model_name)
        except KeyError as exc:
            raise QueryError(str(exc)) from None

    def __getattr__(self, name: str) -> Any:
        if name.startswith("get_"):
            model_name = name[len("get_") :]
            try:
                model_registry.resolve(model_name)
                known = True
            except KeyError:
                known = False
            if known:

                def typed_get(
                    fields: Sequence[str] | None = None, query: Query | None = None
                ) -> list[dict[str, Any]]:
                    return self.get(model_name, fields, query)

                typed_get.__name__ = name
                typed_get.__doc__ = f"Auto-generated read API for {model_name}."
                return typed_get
        raise AttributeError(f"ReadApi has no attribute {name!r}")

    def schema(self) -> list[dict[str, Any]]:
        """Introspected schema of every model (the auto-generated IDL)."""
        return [model._meta.describe() for model in model_registry.all()]


class WriteApi:
    """High-level, transactional write operations (paper section 4.2.2)."""

    def __init__(self, store: ObjectStore):
        self._store = store

    def create_objects(
        self, specs: Sequence[tuple[str, dict[str, Any]]]
    ) -> list[int]:
        """Create many objects atomically; returns their new ids.

        ``specs`` is a list of ``(model_name, field_values)``.  Field
        values may reference earlier objects in the same call by index
        using the sentinel ``("$ref", i)``.
        """
        created: list[Model] = []
        with self._store.transaction():
            for model_name, values in specs:
                model = model_registry.get(model_name)
                resolved = {
                    key: self._deref(value, created) for key, value in values.items()
                }
                created.append(self._store.create(model, **resolved))
        return [obj.id for obj in created if obj.id is not None]

    @staticmethod
    def _deref(value: Any, created: list[Model]) -> Any:
        if isinstance(value, tuple) and len(value) == 2 and value[0] == "$ref":
            return created[value[1]]
        return value

    def update_objects(
        self, updates: Sequence[tuple[str, int, dict[str, Any]]]
    ) -> int:
        """Apply many field updates atomically; returns objects touched.

        ``updates`` is a list of ``(model_name, object_id, field_values)``.
        """
        with self._store.transaction():
            for model_name, obj_id, values in updates:
                model = model_registry.get(model_name)
                obj = self._store.get(model, obj_id)
                self._store.update(obj, **values)
        return len(updates)

    def delete_objects(self, targets: Sequence[tuple[str, int]]) -> int:
        """Delete many objects atomically (cascades apply); returns count."""
        with self._store.transaction():
            for model_name, obj_id in targets:
                model = model_registry.get(model_name)
                obj = self._store.get(model, obj_id)
                self._store.delete(obj)
        return len(targets)

    def apply_portmap_change_plan(self, plan: Any) -> Any:
        """Execute a portmap change plan (paper section 4.2.2).

        The plan object comes from :mod:`repro.design.portmap`; this write
        API carries out portmap creation, migration, update, and deletion
        while enforcing network design rules, atomically.
        """
        from repro.design.portmap import execute_change_plan

        with self._store.transaction():
            return execute_change_plan(self._store, plan)
