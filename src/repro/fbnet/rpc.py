"""The Thrift-like service layer over FBNet (paper section 4.3.2).

Both read and write APIs are exposed as language-independent RPCs.  The
wire format here is a typed, length-prefixed JSON encoding — structurally
equivalent to Thrift's role in the paper: clients marshal a request,
service replicas unmarshal it, execute against their local store through
the ORM-style APIs, and marshal the results back.

Failure semantics match section 4.3.3: a replica whose process has
"crashed" refuses requests, and the routing layer (in
:mod:`repro.fbnet.replication`) redirects to surviving replicas in the
same region, then to the nearest neighboring region.

On top of raw dispatch this module provides the **read front door**
(ROADMAP item 2): :class:`ReadCache` is a read-through cache layered
over the read API.  Every cache entry carries the
:class:`~repro.fbnet.changelog.ReadSet` captured while the entry's fill
ran, plus the per-shard journal positions the fill observed; the store's
change journal then maps each committed mutation onto *exactly* the
entries whose read-sets it invalidates — no TTLs, no blanket flushes.
:class:`CachingReadService` plugs the cache into a read
:class:`ServiceReplica`, and ``multi_get`` batches many reads into one
RPC, with misses filled through :mod:`repro.parallel` under the
task-order merge discipline (results and counters are bit-identical at
any worker count).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro import faults, obs, parallel
from repro.common.errors import ReplicaUnavailable, RpcError
from repro.fbnet.api import ReadApi, WriteApi
from repro.fbnet.changelog import ReadSet, _family
from repro.fbnet.query import Query
from repro.fbnet.store import ObjectStore

__all__ = [
    "CachingReadService",
    "ReadCache",
    "ReadService",
    "RpcRequest",
    "RpcResponse",
    "ServiceReplica",
    "WriteService",
    "decode_message",
    "encode_message",
]

#: Fan a multi-get's misses out through the worker pool only from this
#: many fills — below it, thread handoff costs more than the fills.  The
#: threshold keys off the (deterministic) miss count, never the worker
#: count, so pooled and serial runs count the same metrics.
FILL_FANOUT_MIN = 4

_WIRE_VERSION = 1


def encode_message(payload: dict[str, Any]) -> bytes:
    """Marshal ``payload`` to the wire: a version byte + length + JSON body."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()
    header = _WIRE_VERSION.to_bytes(1, "big") + len(body).to_bytes(4, "big")
    return header + body


def decode_message(wire: bytes) -> dict[str, Any]:
    """Unmarshal a message produced by :func:`encode_message`."""
    if len(wire) < 5:
        raise RpcError("truncated RPC message header")
    version = wire[0]
    if version != _WIRE_VERSION:
        raise RpcError(f"unsupported RPC wire version {version}")
    length = int.from_bytes(wire[1:5], "big")
    body = wire[5 : 5 + length]
    if len(body) != length:
        raise RpcError(f"truncated RPC body: expected {length}, got {len(body)}")
    try:
        payload = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RpcError(f"malformed RPC body: {exc}") from None
    if not isinstance(payload, dict):
        raise RpcError("RPC body must be an object")
    return payload


@dataclass(frozen=True)
class RpcRequest:
    """A marshalled call: which service, which method, what arguments."""

    service: str  # "read" or "write"
    method: str
    args: dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> bytes:
        return encode_message(
            {"service": self.service, "method": self.method, "args": self.args}
        )

    @staticmethod
    def from_wire(wire: bytes) -> RpcRequest:
        payload = decode_message(wire)
        try:
            return RpcRequest(
                service=payload["service"],
                method=payload["method"],
                args=payload.get("args", {}),
            )
        except KeyError as exc:
            raise RpcError(f"request missing key {exc}") from None


@dataclass(frozen=True)
class RpcResponse:
    """A marshalled result or error."""

    ok: bool
    payload: Any = None
    error: str = ""

    def to_wire(self) -> bytes:
        return encode_message(
            {"ok": self.ok, "payload": self.payload, "error": self.error}
        )

    @staticmethod
    def from_wire(wire: bytes) -> RpcResponse:
        data = decode_message(wire)
        return RpcResponse(
            ok=bool(data.get("ok")),
            payload=data.get("payload"),
            error=data.get("error", ""),
        )

    def result(self) -> Any:
        """Return the payload, raising :class:`RpcError` on failure."""
        if not self.ok:
            raise RpcError(self.error or "RPC failed")
        return self.payload


def _normalize_spec(spec: Any) -> tuple[str, tuple[str, ...] | None, dict | None]:
    """One multi-get spec → ``(model, fields, query wire)``.

    Accepts both the wire form (``{"model": ..., "fields": ..., "query":
    ...}``) and the in-process form (``(model, fields, query)`` with a
    live :class:`Query`), so clients and services share one code path.
    """
    if isinstance(spec, dict):
        model, fields, query = spec.get("model"), spec.get("fields"), spec.get("query")
    else:
        model, fields, query = spec
    if not isinstance(model, str):
        raise RpcError(f"multi_get spec needs a model name, got {model!r}")
    if isinstance(query, Query):
        query = query.to_wire()
    return model, tuple(fields) if fields is not None else None, query


class ReadService:
    """Dispatches read-API RPC methods against a store."""

    def __init__(self, store: ObjectStore):
        self._api = ReadApi(store)

    def dispatch(self, method: str, args: dict[str, Any]) -> Any:
        if method == "get":
            return self._api.get(
                args["model"],
                args.get("fields"),
                Query.from_wire(args.get("query")),
            )
        if method == "multi_get":
            return [
                self._api.get(model, fields, Query.from_wire(query))
                for model, fields, query in map(_normalize_spec, args["specs"])
            ]
        if method == "count":
            return self._api.count(args["model"], Query.from_wire(args.get("query")))
        if method == "schema":
            return self._api.schema()
        raise RpcError(f"read service has no method {method!r}")


@dataclass
class _CacheEntry:
    """One cached read result and the evidence needed to invalidate it."""

    payload: Any
    #: Everything the fill read; a journal record invalidates the entry
    #: iff ``read_set.matches(record)``.
    read_set: ReadSet
    #: Per-shard journal positions observed when the fill started (one
    #: ``""`` entry for an unsharded store) — the entry is consistent
    #: with exactly this journal prefix.
    positions: dict[str, int]
    #: Model names the read-set touches (the invalidation index terms).
    interest: tuple[str, ...]


class ReadCache:
    """A read-through cache over one store's read API (ROADMAP item 2).

    Keying: the canonical JSON of ``(method, model, fields, query
    wire)`` — two requests that marshal identically share one entry.

    Invalidation is journal-driven and precise.  Each fill runs with
    read tracking *suspended and replaced* (the ambient read-set of any
    enclosing ``track_reads`` block is untouched — see
    :meth:`~repro.fbnet.store.ObjectStore._suspend_tracking`), capturing
    the fill's own :class:`ReadSet`.  Before every lookup the cache
    advances over the journal delta since its last position — per shard
    for a :class:`~repro.fbnet.sharding.ShardedObjectStore`, so a
    mutation on shard ``s02`` walks only ``s02``'s journal — and evicts
    exactly the entries whose read-sets the new records match
    (``rpc.cache.invalidations``).  Because replication applies records
    through the same journal, a cache over a replica store invalidates
    on apply with no extra plumbing.

    A fill that races a commit (records land between the fill's position
    snapshot and its admission) is *stale on arrival*: the entry is
    discarded (``rpc.cache.stale_evictions``) and the fill retried, so a
    cache-served answer is always byte-identical to a fresh store read.
    Entries never expire otherwise — no TTLs, no blanket flushes.
    """

    def __init__(self, store: ObjectStore, *, name: str = "rpc"):
        self._store = store
        self._api = ReadApi(store)
        self.name = name
        #: ``(shard key, journal source)`` pairs; one ``("", store)`` for
        #: an unsharded store.
        shards = getattr(store, "shards", None)
        self._journals: tuple[tuple[str, ObjectStore], ...] = (
            tuple((shard.shard_key, shard) for shard in shards)
            if shards
            else (("", store),)
        )
        self._positions: dict[str, int] = {
            key: source.journal_position for key, source in self._journals
        }
        self._entries: dict[str, _CacheEntry] = {}
        #: model name -> keys of entries whose read-sets touch it; the
        #: index that maps a journal record onto its candidate entries.
        self._interest: dict[str, set[str]] = {}

    @property
    def store(self) -> ObjectStore:
        return self._store

    def __len__(self) -> int:
        return len(self._entries)

    # -- keying --------------------------------------------------------

    @staticmethod
    def cache_key(
        method: str,
        model: str,
        fields: Sequence[str] | None,
        query_wire: dict | None,
    ) -> str:
        return json.dumps(
            [method, model, list(fields) if fields is not None else None, query_wire],
            sort_keys=True,
            separators=(",", ":"),
        )

    # -- invalidation --------------------------------------------------

    def advance(self) -> int:
        """Process the journal delta since the last advance.

        Every record committed (or replication-applied) since the cache
        last looked is matched against the candidate entries' read-sets;
        matching entries are evicted.  Returns the eviction count.
        """
        evicted = 0
        for shard_key, source in self._journals:
            position = source.journal_position
            start = self._positions[shard_key]
            if position <= start:
                continue
            for record in source.journal_since(start):
                evicted += self._invalidate(record)
            self._positions[shard_key] = position
        return evicted

    def _invalidate(self, record: Any) -> int:
        candidates: set[str] = set()
        for name in _family(record.model):
            candidates |= self._interest.get(name, set())
        evicted = 0
        for key in sorted(candidates):
            entry = self._entries.get(key)
            if entry is not None and entry.read_set.matches(record):
                self._discard(key, entry)
                obs.counter("rpc.cache.invalidations", cache=self.name).inc()
                evicted += 1
        return evicted

    def _discard(self, key: str, entry: _CacheEntry) -> None:
        del self._entries[key]
        for name in entry.interest:
            bucket = self._interest.get(name)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._interest[name]

    def clear(self) -> None:
        """Drop every entry (the one blanket flush, for tests/operators)."""
        self._entries.clear()
        self._interest.clear()

    # -- fills ---------------------------------------------------------

    def _compute(
        self,
        method: str,
        model: str,
        fields: tuple[str, ...] | None,
        query_wire: dict | None,
    ) -> tuple[Any, ReadSet]:
        """Run one read against the store, capturing its read-set.

        Tracking is suspended first: a fill inside a caller's
        ``track_reads`` block must not drag the cache's dependencies
        into the *ambient* read-set (the caller did not semantically
        perform these reads — the cache did).
        """
        read_set = ReadSet()
        with self._store._suspend_tracking():
            with self._store.track_reads(read_set):
                if method == "count":
                    payload: Any = self._api.count(model, Query.from_wire(query_wire))
                else:
                    payload = self._api.get(model, fields, Query.from_wire(query_wire))
        return payload, read_set

    def _admit(
        self,
        key: str,
        payload: Any,
        read_set: ReadSet,
        positions: dict[str, int],
    ) -> bool:
        """Install a filled entry unless it is stale on arrival.

        Records committed after ``positions`` (the fill's snapshot) that
        match the fill's read-set mean the payload may predate the
        mutation: count a stale eviction and refuse the entry.
        """
        for shard_key, source in self._journals:
            for record in source.journal_since(positions[shard_key]):
                if read_set.matches(record):
                    obs.counter(
                        "rpc.cache.stale_evictions", cache=self.name
                    ).inc()
                    return False
        interest = tuple(
            sorted(
                set(read_set.models)
                | {model for model, _ in read_set.objects}
                | set(read_set.fields)
            )
        )
        self._entries[key] = _CacheEntry(payload, read_set, positions, interest)
        for name in interest:
            self._interest.setdefault(name, set()).add(key)
        return True

    # -- the read-through API ------------------------------------------

    def get(
        self,
        model: str,
        fields: Sequence[str] | None = None,
        query: Query | dict | None = None,
    ) -> list[dict[str, Any]]:
        """Read-through ``ReadApi.get``: serve the cache, fill on miss."""
        return self._serve("get", *_normalize_spec((model, fields, query)))

    def count(self, model: str, query: Query | dict | None = None) -> int:
        """Read-through ``ReadApi.count``."""
        return self._serve("count", *_normalize_spec((model, None, query)))

    def _serve(
        self,
        method: str,
        model: str,
        fields: tuple[str, ...] | None,
        query_wire: dict | None,
    ) -> Any:
        self.advance()
        key = self.cache_key(method, model, fields, query_wire)
        entry = self._entries.get(key)
        if entry is not None:
            obs.counter("rpc.cache.hits", cache=self.name).inc()
            return entry.payload
        obs.counter("rpc.cache.misses", cache=self.name).inc()
        payload: Any = None
        for _ in range(2):
            positions = dict(self._positions)
            payload, read_set = self._compute(method, model, fields, query_wire)
            if self._admit(key, payload, read_set, positions):
                return payload
            self.advance()
        # Two consecutive stale fills: mutations are landing faster than
        # fills complete — serve the (fresh) last computation uncached.
        return payload

    def multi_get(self, specs: Sequence[Any]) -> list[Any]:
        """Serve a batch of ``get`` specs, filling all misses together.

        Hits and misses are classified up front against the advanced
        cache (each request counts once, so duplicate specs within one
        batch count one miss per occurrence but share a single fill);
        unique misses then fill through :func:`repro.parallel.run_tasks`
        when the batch is worth fanning out.  Admission happens on the
        coordinator in key order, so the cache contents — and every
        counter — are identical at any worker count.
        """
        self.advance()
        normalized = [_normalize_spec(spec) for spec in specs]
        keys = [self.cache_key("get", *spec) for spec in normalized]
        payload_by_key: dict[str, Any] = {}
        fill_order: list[str] = []
        fill_specs: dict[str, tuple[str, tuple[str, ...] | None, dict | None]] = {}
        for index, key in enumerate(keys):
            entry = self._entries.get(key)
            if entry is not None:
                obs.counter("rpc.cache.hits", cache=self.name).inc()
                payload_by_key[key] = entry.payload
            else:
                obs.counter("rpc.cache.misses", cache=self.name).inc()
                if key not in fill_specs:
                    fill_specs[key] = normalized[index]
                    fill_order.append(key)
        if fill_order:
            positions = dict(self._positions)
            computed = self._compute_fills([fill_specs[key] for key in fill_order])
            for key, (payload, read_set) in zip(fill_order, computed):
                self._admit(key, payload, read_set, positions)
                payload_by_key[key] = payload
        return [payload_by_key[key] for key in keys]

    def _compute_fills(
        self, specs: list[tuple[str, tuple[str, ...] | None, dict | None]]
    ) -> list[tuple[Any, ReadSet]]:
        if len(specs) >= FILL_FANOUT_MIN and parallel.current_task() is None:
            results = parallel.run_tasks(
                [
                    (f"{index:06d}", (lambda s=spec: self._compute("get", *s)))
                    for index, spec in enumerate(specs)
                ],
                section="rpc.cache.fill",
            )
            parallel.raise_first_error(results)
            return [result.value for result in results]
        return [self._compute("get", *spec) for spec in specs]

    # -- introspection -------------------------------------------------

    def stats(self) -> dict[str, float]:
        """The cache's ``rpc.cache.*`` counter values (0 when untouched)."""
        out: dict[str, float] = {}
        for event in ("hits", "misses", "invalidations", "stale_evictions"):
            series = obs.registry().get(f"rpc.cache.{event}", cache=self.name)
            out[event] = series.value if series is not None else 0.0
        out["entries"] = float(len(self._entries))
        return out

    def positions(self) -> dict[str, int]:
        """The per-shard journal positions the cache has advanced to."""
        return dict(self._positions)


class CachingReadService(ReadService):
    """A :class:`ReadService` whose reads go through a :class:`ReadCache`.

    ``schema`` (registry-derived, store-independent) passes straight
    through; ``get``/``count``/``multi_get`` are served read-through.
    """

    def __init__(self, store: ObjectStore, cache: ReadCache | None = None):
        super().__init__(store)
        if cache is not None and cache.store is not store:
            raise RpcError("cache is bound to a different store")
        self.cache = cache if cache is not None else ReadCache(store)

    def dispatch(self, method: str, args: dict[str, Any]) -> Any:
        if method == "get":
            return self.cache.get(
                args["model"], args.get("fields"), args.get("query")
            )
        if method == "multi_get":
            return self.cache.multi_get(args["specs"])
        if method == "count":
            return self.cache.count(args["model"], args.get("query"))
        return super().dispatch(method, args)


class WriteService:
    """Dispatches write-API RPC methods against a store."""

    def __init__(self, store: ObjectStore):
        self._api = WriteApi(store)

    def dispatch(self, method: str, args: dict[str, Any]) -> Any:
        if method == "create_objects":
            specs = [
                (model_name, self._revive_refs(values))
                for model_name, values in args["specs"]
            ]
            return self._api.create_objects(specs)
        if method == "update_objects":
            updates = [
                (model_name, obj_id, values)
                for model_name, obj_id, values in args["updates"]
            ]
            return self._api.update_objects(updates)
        if method == "delete_objects":
            targets = [(model_name, obj_id) for model_name, obj_id in args["targets"]]
            return self._api.delete_objects(targets)
        raise RpcError(f"write service has no method {method!r}")

    @staticmethod
    def _revive_refs(values: dict[str, Any]) -> dict[str, Any]:
        # JSON turns the ("$ref", i) tuples into lists; restore them.
        revived: dict[str, Any] = {}
        for key, value in values.items():
            if (
                isinstance(value, list)
                and len(value) == 2
                and value[0] == "$ref"
                and isinstance(value[1], int)
            ):
                revived[key] = ("$ref", value[1])
            else:
                revived[key] = value
        return revived


class ServiceReplica:
    """One deployed read or write API service replica.

    Replicas are deployed per region, fronting that region's database
    (paper section 4.3.3).  A crashed replica refuses requests; the
    router redirects.
    """

    def __init__(
        self,
        name: str,
        region: str,
        kind: str,
        store: ObjectStore,
        cache: ReadCache | None = None,
    ):
        if kind not in ("read", "write"):
            raise ValueError(f"replica kind must be 'read' or 'write', not {kind!r}")
        if cache is not None and kind != "read":
            raise ValueError("only read replicas take a cache")
        self.name = name
        self.region = region
        self.kind = kind
        self.healthy = True
        self._store = store
        self.cache = cache
        self._service: ReadService | WriteService = self._build_service(store, cache)
        #: Requests served, for test/bench introspection.
        self.served = 0

    def _build_service(
        self, store: ObjectStore, cache: ReadCache | None
    ) -> ReadService | WriteService:
        if self.kind == "write":
            return WriteService(store)
        if cache is not None:
            return CachingReadService(store, cache)
        return ReadService(store)

    def retarget(self, store: ObjectStore, cache: ReadCache | None = None) -> None:
        """Point this replica at a different database (after failover).

        A cached read replica gets a fresh cache over the new store
        unless the caller passes one (regions share a cache across their
        replicas); stale entries from the old store never survive.
        """
        self._store = store
        if self.kind == "read" and self.cache is not None:
            cache = cache if cache is not None else ReadCache(store, name=self.cache.name)
        self.cache = cache
        self._service = self._build_service(store, cache)

    def crash(self) -> None:
        self.healthy = False

    def recover(self) -> None:
        self.healthy = True

    def handle(self, wire_request: bytes) -> bytes:
        """Serve one marshalled request, returning a marshalled response."""
        if not self.healthy:
            obs.counter("rpc.refused", service=self.kind, region=self.region).inc()
            raise ReplicaUnavailable(f"replica {self.name} is down")
        request = RpcRequest.from_wire(wire_request)
        if faults.should_inject(
            "rpc.call",
            service=self.kind,
            method=request.method,
            replica=self.name,
            region=self.region,
        ):
            obs.counter(
                "rpc.failure", service=self.kind, method=request.method,
                reason="fault-injected",
            ).inc()
            raise ReplicaUnavailable(
                f"replica {self.name}: injected transient RPC fault"
            )
        if request.service != self.kind:
            obs.counter(
                "rpc.failure", service=self.kind, method=request.method,
                reason="wrong-service",
            ).inc()
            raise RpcError(
                f"replica {self.name} is a {self.kind} service, "
                f"got a {request.service} request"
            )
        self.served += 1
        obs.counter("rpc.call", service=self.kind, method=request.method).inc()
        with obs.timed("rpc.latency", service=self.kind, method=request.method):
            try:
                payload = self._service.dispatch(request.method, request.args)
            except RpcError:
                obs.counter(
                    "rpc.failure", service=self.kind, method=request.method,
                    reason="bad-request",
                ).inc()
                raise
            except Exception as exc:  # surfaced to the caller, not swallowed
                obs.counter(
                    "rpc.failure", service=self.kind, method=request.method,
                    reason=type(exc).__name__,
                ).inc()
                return RpcResponse(
                    ok=False, error=f"{type(exc).__name__}: {exc}"
                ).to_wire()
        return RpcResponse(ok=True, payload=payload).to_wire()
