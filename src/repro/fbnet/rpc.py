"""The Thrift-like service layer over FBNet (paper section 4.3.2).

Both read and write APIs are exposed as language-independent RPCs.  The
wire format here is a typed, length-prefixed JSON encoding — structurally
equivalent to Thrift's role in the paper: clients marshal a request,
service replicas unmarshal it, execute against their local store through
the ORM-style APIs, and marshal the results back.

Failure semantics match section 4.3.3: a replica whose process has
"crashed" refuses requests, and the routing layer (in
:mod:`repro.fbnet.replication`) redirects to surviving replicas in the
same region, then to the nearest neighboring region.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro import faults, obs
from repro.common.errors import ReplicaUnavailable, RpcError
from repro.fbnet.api import ReadApi, WriteApi
from repro.fbnet.query import Query
from repro.fbnet.store import ObjectStore

__all__ = [
    "ReadService",
    "RpcRequest",
    "RpcResponse",
    "ServiceReplica",
    "WriteService",
    "decode_message",
    "encode_message",
]

_WIRE_VERSION = 1


def encode_message(payload: dict[str, Any]) -> bytes:
    """Marshal ``payload`` to the wire: a version byte + length + JSON body."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()
    header = _WIRE_VERSION.to_bytes(1, "big") + len(body).to_bytes(4, "big")
    return header + body


def decode_message(wire: bytes) -> dict[str, Any]:
    """Unmarshal a message produced by :func:`encode_message`."""
    if len(wire) < 5:
        raise RpcError("truncated RPC message header")
    version = wire[0]
    if version != _WIRE_VERSION:
        raise RpcError(f"unsupported RPC wire version {version}")
    length = int.from_bytes(wire[1:5], "big")
    body = wire[5 : 5 + length]
    if len(body) != length:
        raise RpcError(f"truncated RPC body: expected {length}, got {len(body)}")
    try:
        payload = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RpcError(f"malformed RPC body: {exc}") from None
    if not isinstance(payload, dict):
        raise RpcError("RPC body must be an object")
    return payload


@dataclass(frozen=True)
class RpcRequest:
    """A marshalled call: which service, which method, what arguments."""

    service: str  # "read" or "write"
    method: str
    args: dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> bytes:
        return encode_message(
            {"service": self.service, "method": self.method, "args": self.args}
        )

    @staticmethod
    def from_wire(wire: bytes) -> RpcRequest:
        payload = decode_message(wire)
        try:
            return RpcRequest(
                service=payload["service"],
                method=payload["method"],
                args=payload.get("args", {}),
            )
        except KeyError as exc:
            raise RpcError(f"request missing key {exc}") from None


@dataclass(frozen=True)
class RpcResponse:
    """A marshalled result or error."""

    ok: bool
    payload: Any = None
    error: str = ""

    def to_wire(self) -> bytes:
        return encode_message(
            {"ok": self.ok, "payload": self.payload, "error": self.error}
        )

    @staticmethod
    def from_wire(wire: bytes) -> RpcResponse:
        data = decode_message(wire)
        return RpcResponse(
            ok=bool(data.get("ok")),
            payload=data.get("payload"),
            error=data.get("error", ""),
        )

    def result(self) -> Any:
        """Return the payload, raising :class:`RpcError` on failure."""
        if not self.ok:
            raise RpcError(self.error or "RPC failed")
        return self.payload


class ReadService:
    """Dispatches read-API RPC methods against a store."""

    def __init__(self, store: ObjectStore):
        self._api = ReadApi(store)

    def dispatch(self, method: str, args: dict[str, Any]) -> Any:
        if method == "get":
            return self._api.get(
                args["model"],
                args.get("fields"),
                Query.from_wire(args.get("query")),
            )
        if method == "count":
            return self._api.count(args["model"], Query.from_wire(args.get("query")))
        if method == "schema":
            return self._api.schema()
        raise RpcError(f"read service has no method {method!r}")


class WriteService:
    """Dispatches write-API RPC methods against a store."""

    def __init__(self, store: ObjectStore):
        self._api = WriteApi(store)

    def dispatch(self, method: str, args: dict[str, Any]) -> Any:
        if method == "create_objects":
            specs = [
                (model_name, self._revive_refs(values))
                for model_name, values in args["specs"]
            ]
            return self._api.create_objects(specs)
        if method == "update_objects":
            updates = [
                (model_name, obj_id, values)
                for model_name, obj_id, values in args["updates"]
            ]
            return self._api.update_objects(updates)
        if method == "delete_objects":
            targets = [(model_name, obj_id) for model_name, obj_id in args["targets"]]
            return self._api.delete_objects(targets)
        raise RpcError(f"write service has no method {method!r}")

    @staticmethod
    def _revive_refs(values: dict[str, Any]) -> dict[str, Any]:
        # JSON turns the ("$ref", i) tuples into lists; restore them.
        revived: dict[str, Any] = {}
        for key, value in values.items():
            if (
                isinstance(value, list)
                and len(value) == 2
                and value[0] == "$ref"
                and isinstance(value[1], int)
            ):
                revived[key] = ("$ref", value[1])
            else:
                revived[key] = value
        return revived


class ServiceReplica:
    """One deployed read or write API service replica.

    Replicas are deployed per region, fronting that region's database
    (paper section 4.3.3).  A crashed replica refuses requests; the
    router redirects.
    """

    def __init__(self, name: str, region: str, kind: str, store: ObjectStore):
        if kind not in ("read", "write"):
            raise ValueError(f"replica kind must be 'read' or 'write', not {kind!r}")
        self.name = name
        self.region = region
        self.kind = kind
        self.healthy = True
        self._store = store
        self._service: ReadService | WriteService = (
            ReadService(store) if kind == "read" else WriteService(store)
        )
        #: Requests served, for test/bench introspection.
        self.served = 0

    def retarget(self, store: ObjectStore) -> None:
        """Point this replica at a different database (after failover)."""
        self._store = store
        self._service = (
            ReadService(store) if self.kind == "read" else WriteService(store)
        )

    def crash(self) -> None:
        self.healthy = False

    def recover(self) -> None:
        self.healthy = True

    def handle(self, wire_request: bytes) -> bytes:
        """Serve one marshalled request, returning a marshalled response."""
        if not self.healthy:
            obs.counter("rpc.refused", service=self.kind, region=self.region).inc()
            raise ReplicaUnavailable(f"replica {self.name} is down")
        request = RpcRequest.from_wire(wire_request)
        if faults.should_inject(
            "rpc.call",
            service=self.kind,
            method=request.method,
            replica=self.name,
            region=self.region,
        ):
            obs.counter(
                "rpc.failure", service=self.kind, method=request.method,
                reason="fault-injected",
            ).inc()
            raise ReplicaUnavailable(
                f"replica {self.name}: injected transient RPC fault"
            )
        if request.service != self.kind:
            obs.counter(
                "rpc.failure", service=self.kind, method=request.method,
                reason="wrong-service",
            ).inc()
            raise RpcError(
                f"replica {self.name} is a {self.kind} service, "
                f"got a {request.service} request"
            )
        self.served += 1
        obs.counter("rpc.call", service=self.kind, method=request.method).inc()
        with obs.timed("rpc.latency", service=self.kind, method=request.method):
            try:
                payload = self._service.dispatch(request.method, request.args)
            except RpcError:
                obs.counter(
                    "rpc.failure", service=self.kind, method=request.method,
                    reason="bad-request",
                ).inc()
                raise
            except Exception as exc:  # surfaced to the caller, not swallowed
                obs.counter(
                    "rpc.failure", service=self.kind, method=request.method,
                    reason=type(exc).__name__,
                ).inc()
                return RpcResponse(
                    ok=False, error=f"{type(exc).__name__}: {exc}"
                ).to_wire()
        return RpcResponse(ok=True, payload=payload).to_wire()
