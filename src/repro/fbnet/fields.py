"""Typed value fields and relationship fields for FBNet models.

Each field type validates and normalizes assigned values via
:meth:`Field.get_prep_value`, mirroring the custom Django fields of the
paper's Figure 6 (e.g. ``V6PrefixField`` rejects anything that is not a
valid IPv6 prefix).  Fields are descriptors: model instances store the
prepared value in ``instance.__dict__`` under the field name.
"""

from __future__ import annotations

import ipaddress
import re
from collections.abc import Callable, Sequence
from enum import Enum
from typing import Any

from repro.common.errors import ValidationError

__all__ = [
    "ASNField",
    "BoolField",
    "CharField",
    "DateTimeField",
    "EnumField",
    "Field",
    "FloatField",
    "ForeignKey",
    "IntField",
    "JSONField",
    "MACAddressField",
    "OnDelete",
    "V4AddressField",
    "V4PrefixField",
    "V6AddressField",
    "V6PrefixField",
]

#: Sentinel distinguishing "no default was given" from "default is None".
_UNSET = object()


class Field:
    """Base class for all FBNet value fields.

    Parameters
    ----------
    default:
        Value used when the constructor does not supply one.  May be a
        callable invoked per-instance (so mutable defaults are safe).
    null:
        Whether ``None`` is an acceptable stored value.
    unique:
        Whether the store enforces uniqueness of this field per model table.
    choices:
        Optional whitelist of allowed values.
    help_text:
        Human-readable description surfaced by model introspection.
    """

    def __init__(
        self,
        *,
        default: Any = _UNSET,
        null: bool = False,
        unique: bool = False,
        choices: Sequence[Any] | None = None,
        help_text: str = "",
    ):
        self._default = default
        self.null = null
        self.unique = unique
        self.choices = tuple(choices) if choices is not None else None
        self.help_text = help_text
        # Assigned by the Model metaclass:
        self.name: str = ""
        self.model: type | None = None

    # -- descriptor protocol -------------------------------------------------

    def __set_name__(self, owner: type, name: str) -> None:
        if not self.name:
            self.name = name

    def __get__(self, instance: Any, owner: type | None = None) -> Any:
        if instance is None:
            return self
        return instance.__dict__.get(self.name)

    def __set__(self, instance: Any, value: Any) -> None:
        instance.__dict__[self.name] = self.clean(value)

    # -- validation ----------------------------------------------------------

    @property
    def has_default(self) -> bool:
        return self._default is not _UNSET

    def get_default(self) -> Any:
        if not self.has_default:
            return None
        if callable(self._default):
            return self._default()
        return self._default

    def clean(self, value: Any) -> Any:
        """Validate and normalize ``value``; raise ``ValidationError`` if bad."""
        if value is None:
            if self.null:
                return None
            raise ValidationError(f"{self._label()}: value may not be null")
        prepared = self.get_prep_value(value)
        if self.choices is not None and prepared not in self.choices:
            raise ValidationError(
                f"{self._label()}: {prepared!r} is not one of {list(self.choices)}"
            )
        return prepared

    def get_prep_value(self, value: Any) -> Any:
        """Normalize ``value`` for storage.  Subclasses override."""
        return value

    def _label(self) -> str:
        model = self.model.__name__ if self.model else "?"
        return f"{model}.{self.name}"

    def describe(self) -> dict[str, Any]:
        """Introspection record used by the RPC schema generator."""
        return {
            "name": self.name,
            "type": type(self).__name__,
            "null": self.null,
            "unique": self.unique,
            "choices": list(self.choices) if self.choices else None,
            "help_text": self.help_text,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self._label()}>"


class CharField(Field):
    """A string field with an optional ``max_length``."""

    def __init__(self, *, max_length: int = 255, **kwargs: Any):
        super().__init__(**kwargs)
        self.max_length = max_length

    def get_prep_value(self, value: Any) -> str:
        if not isinstance(value, str):
            raise ValidationError(f"{self._label()}: expected str, got {type(value).__name__}")
        if len(value) > self.max_length:
            raise ValidationError(
                f"{self._label()}: length {len(value)} exceeds max_length {self.max_length}"
            )
        return value


class IntField(Field):
    """An integer field with optional bounds."""

    def __init__(
        self,
        *,
        min_value: int | None = None,
        max_value: int | None = None,
        **kwargs: Any,
    ):
        super().__init__(**kwargs)
        self.min_value = min_value
        self.max_value = max_value

    def get_prep_value(self, value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValidationError(f"{self._label()}: expected int, got {type(value).__name__}")
        if self.min_value is not None and value < self.min_value:
            raise ValidationError(f"{self._label()}: {value} < min {self.min_value}")
        if self.max_value is not None and value > self.max_value:
            raise ValidationError(f"{self._label()}: {value} > max {self.max_value}")
        return value


class FloatField(Field):
    """A float field; ints are accepted and coerced."""

    def get_prep_value(self, value: Any) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValidationError(f"{self._label()}: expected float, got {type(value).__name__}")
        return float(value)


class BoolField(Field):
    """A strict boolean field (no truthy coercion)."""

    def get_prep_value(self, value: Any) -> bool:
        if not isinstance(value, bool):
            raise ValidationError(f"{self._label()}: expected bool, got {type(value).__name__}")
        return value


class DateTimeField(FloatField):
    """A point in time, stored as seconds since the simulation epoch.

    The reproduction runs on a simulated clock (:mod:`repro.simulation.clock`)
    so timestamps are plain floats rather than ``datetime`` objects; this
    keeps every run deterministic.
    """

    def get_prep_value(self, value: Any) -> float:
        ts = super().get_prep_value(value)
        if ts < 0:
            raise ValidationError(f"{self._label()}: timestamp may not be negative")
        return ts


class EnumField(Field):
    """A field restricted to members of a :class:`enum.Enum`.

    Accepts either the enum member or its value and stores the member.
    """

    def __init__(self, enum_type: type[Enum], **kwargs: Any):
        super().__init__(**kwargs)
        self.enum_type = enum_type

    def get_prep_value(self, value: Any) -> Enum:
        if isinstance(value, self.enum_type):
            return value
        try:
            return self.enum_type(value)
        except ValueError:
            pass
        try:
            return self.enum_type[value]
        except (KeyError, TypeError):
            raise ValidationError(
                f"{self._label()}: {value!r} is not a {self.enum_type.__name__}"
            ) from None


_MAC_RE = re.compile(r"^([0-9a-f]{2}:){5}[0-9a-f]{2}$")


class MACAddressField(Field):
    """A MAC address, normalized to lowercase colon-separated form."""

    def get_prep_value(self, value: Any) -> str:
        if not isinstance(value, str):
            raise ValidationError(f"{self._label()}: expected str, got {type(value).__name__}")
        normalized = value.strip().lower().replace("-", ":").replace(".", "")
        if ":" not in normalized and len(normalized) == 12:
            normalized = ":".join(normalized[i : i + 2] for i in range(0, 12, 2))
        if not _MAC_RE.match(normalized):
            raise ValidationError(f"{self._label()}: {value!r} is not a MAC address")
        return normalized


class _PrefixField(Field):
    """Shared behaviour for IPv4/IPv6 prefix fields.

    Values are stored as ``ip_interface`` strings, preserving host bits —
    the two ends of a /127 keep distinct addresses.  This matches the
    paper's ``V6PrefixField`` built on ``ipaddr.IPNetwork``, which also
    preserved the given address.
    """

    version: int = 0

    def get_prep_value(self, value: Any) -> str:
        try:
            interface = ipaddress.ip_interface(str(value))
        except ValueError as exc:
            raise ValidationError(f"{self._label()}: {value!r}: {exc}") from None
        if interface.version != self.version:
            raise ValidationError(
                f"{self._label()}: {value!r} is IPv{interface.version}, "
                f"expected IPv{self.version}"
            )
        return str(interface)


class V4PrefixField(_PrefixField):
    """An IPv4 prefix in CIDR form, e.g. ``10.0.0.0/31``."""

    version = 4


class V6PrefixField(_PrefixField):
    """An IPv6 prefix in CIDR form, e.g. ``2401:db00::/127``.

    This is the field from the paper's Figure 6: values that do not parse
    as IPv6 are rejected at assignment time.
    """

    version = 6


class _AddressField(Field):
    """Shared behaviour for single-host IP address fields."""

    version: int = 0

    def get_prep_value(self, value: Any) -> str:
        try:
            address = ipaddress.ip_address(str(value))
        except ValueError as exc:
            raise ValidationError(f"{self._label()}: {value!r}: {exc}") from None
        if address.version != self.version:
            raise ValidationError(
                f"{self._label()}: {value!r} is IPv{address.version}, "
                f"expected IPv{self.version}"
            )
        return str(address)


class V4AddressField(_AddressField):
    """A single IPv4 address, e.g. a loopback."""

    version = 4


class V6AddressField(_AddressField):
    """A single IPv6 address, e.g. a loopback."""

    version = 6


class ASNField(IntField):
    """A BGP autonomous-system number (4-byte range)."""

    def __init__(self, **kwargs: Any):
        kwargs.setdefault("min_value", 0)
        kwargs.setdefault("max_value", 2**32 - 1)
        super().__init__(**kwargs)


class JSONField(Field):
    """Free-form JSON-compatible data (dicts, lists, scalars).

    Used sparingly — the paper's principle (1) says models only contain the
    fields tools need — but some Derived models carry vendor blobs here.
    """

    _SCALARS = (str, int, float, bool, type(None))

    def get_prep_value(self, value: Any) -> Any:
        self._check(value, depth=0)
        return value

    def _check(self, value: Any, depth: int) -> None:
        if depth > 32:
            raise ValidationError(f"{self._label()}: nesting too deep")
        if isinstance(value, self._SCALARS):
            return
        if isinstance(value, list):
            for item in value:
                self._check(item, depth + 1)
            return
        if isinstance(value, dict):
            for key, item in value.items():
                if not isinstance(key, str):
                    raise ValidationError(f"{self._label()}: dict keys must be str")
                self._check(item, depth + 1)
            return
        raise ValidationError(
            f"{self._label()}: {type(value).__name__} is not JSON-compatible"
        )


class OnDelete(Enum):
    """What happens to referrers when a referenced object is deleted."""

    #: Delete the referring object too (paper: deleting a circuit deletes
    #: its prefixes).
    CASCADE = "cascade"
    #: Null out the relationship field (requires ``null=True``).
    SET_NULL = "set_null"
    #: Refuse the delete while referrers exist.
    PROTECT = "protect"


class ForeignKey(Field):
    """A typed reference to another FBNet model (a relationship field).

    The referenced model may be given as a class or by name (string) to
    allow forward references.  The store maintains the reverse index; the
    referenced model gains a *reverse connection* named ``related_name``
    (API-only, per the paper's footnote 2).
    """

    def __init__(
        self,
        to: type | str,
        *,
        related_name: str | None = None,
        on_delete: OnDelete = OnDelete.PROTECT,
        **kwargs: Any,
    ):
        super().__init__(**kwargs)
        self._to = to
        self.related_name = related_name
        self.on_delete = on_delete
        if on_delete is OnDelete.SET_NULL and not self.null:
            raise ValueError("SET_NULL foreign key must be null=True")

    @property
    def to(self) -> type:
        """The referenced model class (resolving string forward refs)."""
        if isinstance(self._to, str):
            from repro.fbnet.base import model_registry

            self._to = model_registry.get(self._to)
        return self._to

    def __get__(self, instance: Any, owner: type | None = None) -> Any:
        """Resolve to the referenced object when attached to a store.

        On a free-floating (unsaved) object the raw id is returned; the
        ``<name>_id`` attribute always returns the raw id.
        """
        if instance is None:
            return self
        raw = instance.__dict__.get(self.name)
        store = instance.__dict__.get("_store")
        if raw is None or store is None:
            return raw
        return store.get(self.to, raw)

    def get_prep_value(self, value: Any) -> Any:
        from repro.fbnet.base import Model

        if isinstance(value, Model):
            if not isinstance(value, self.to):
                raise ValidationError(
                    f"{self._label()}: expected {self.to.__name__}, "
                    f"got {type(value).__name__}"
                )
            if value.id is None:
                raise ValidationError(
                    f"{self._label()}: referenced {type(value).__name__} is unsaved"
                )
            return value.id
        if isinstance(value, int):
            return value
        raise ValidationError(
            f"{self._label()}: expected a saved {self.to.__name__} or object id, "
            f"got {type(value).__name__}"
        )

    def describe(self) -> dict[str, Any]:
        record = super().describe()
        record["to"] = self.to.__name__
        record["related_name"] = self.related_name
        record["on_delete"] = self.on_delete.value
        return record


def validator(fn: Callable[[Any], Any]) -> Callable[[Any], Any]:
    """Mark a plain function as a reusable value validator (documentation aid)."""
    fn.__is_validator__ = True  # type: ignore[attr-defined]
    return fn
