"""The FBNet model framework: metaclass, registry, and instances.

This is our stand-in for the Django ORM layer the paper builds FBNet on
(section 4.3.1).  A *model* is a Python class whose class-level
:class:`~repro.fbnet.fields.Field` attributes define the table schema; an
*object* is an instance of a model held by an
:class:`~repro.fbnet.store.ObjectStore`.

Models are partitioned into two groups (section 4.1.2):

* ``ModelGroup.DESIRED`` — the desired network state, written by design tools;
* ``ModelGroup.DERIVED`` — the observed network state, written by monitoring.

The registry supports the introspection used to auto-generate per-type read
APIs (section 4.3.2) and to reproduce Figure 13 (related models per model).
"""

from __future__ import annotations

from collections.abc import Iterator
from enum import Enum
from typing import Any, ClassVar

from repro.common.errors import ValidationError
from repro.common.util import camel_to_snake
from repro.fbnet.fields import Field, ForeignKey

__all__ = ["Model", "ModelGroup", "ModelRegistry", "model_registry"]


class ModelGroup(Enum):
    """Which partition of FBNet a model belongs to (section 4.1.2)."""

    DESIRED = "desired"
    DERIVED = "derived"


class ModelRegistry:
    """All concrete FBNet models, keyed by class name.

    The registry also lazily computes the *reverse relation* map: for each
    model, the API-only reverse connections contributed by foreign keys
    pointing at it (paper footnote 2).
    """

    def __init__(self) -> None:
        self._models: dict[str, type[Model]] = {}
        self._reverse_cache: dict[str, dict[str, tuple[type[Model], str]]] | None = None
        self._abstract_cache: dict[str, type[Model]] = {}

    def register(self, model: type[Model]) -> None:
        name = model.__name__
        if name in self._models:
            raise ValueError(f"duplicate FBNet model name: {name}")
        self._models[name] = model
        self._reverse_cache = None
        self._abstract_cache.clear()

    def get(self, name: str) -> type[Model]:
        try:
            return self._models[name]
        except KeyError:
            raise KeyError(f"unknown FBNet model: {name}") from None

    def resolve(self, name: str) -> type[Model]:
        """Like :meth:`get`, but also resolves *abstract* ancestor names.

        Only concrete models register, yet the store can filter a whole
        family through its abstract base (``store.filter(Device)``).
        ``resolve("Device")`` finds that base by walking the registered
        models' ancestries, so name-keyed read paths (the read API, the
        RPC wire) can query model families too.  Write paths keep using
        :meth:`get` — abstract names stay unwritable.
        """
        found = self._models.get(name) or self._abstract_cache.get(name)
        if found is not None:
            return found
        if name != "Model":  # the root base is not a queryable family
            for model in self._models.values():
                for klass in model.__mro__[1:]:
                    meta = getattr(klass, "_meta", None)
                    if meta is not None and meta.abstract and klass.__name__ == name:
                        self._abstract_cache[name] = klass
                        return klass
        raise KeyError(f"unknown FBNet model: {name}")

    def all(self) -> list[type[Model]]:
        return list(self._models.values())

    def by_group(self, group: ModelGroup) -> list[type[Model]]:
        return [m for m in self._models.values() if m._meta.group is group]

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def __iter__(self) -> Iterator[type[Model]]:
        return iter(self._models.values())

    # -- reverse relations ----------------------------------------------------

    def reverse_relations(self, model: type[Model]) -> dict[str, tuple[type[Model], str]]:
        """Map of ``related_name`` -> (source model, fk field name) for ``model``.

        Includes relations pointing at any ancestor of ``model``, because a
        FK to a base class accepts subclass instances.
        """
        if self._reverse_cache is None:
            self._build_reverse_cache()
        assert self._reverse_cache is not None
        result: dict[str, tuple[type[Model], str]] = {}
        for klass in model.__mro__:
            if isinstance(klass, ModelMeta) and klass.__name__ in self._reverse_cache:
                for name, entry in self._reverse_cache[klass.__name__].items():
                    result.setdefault(name, entry)
        return result

    def _build_reverse_cache(self) -> None:
        cache: dict[str, dict[str, tuple[type[Model], str]]] = {}
        for model in self._models.values():
            for field in model._meta.fields.values():
                if not isinstance(field, ForeignKey):
                    continue
                target = field.to.__name__
                related = field.related_name or f"{camel_to_snake(model.__name__)}s"
                # "{model}" templating lets abstract bases declare reverse
                # names that stay distinct per concrete subclass (compare
                # Django's "%(class)s").
                if "{model}" in related:
                    related = related.format(model=camel_to_snake(model.__name__))
                cache.setdefault(target, {})
                if related in cache[target]:
                    other_model, other_field = cache[target][related]
                    if (other_model, other_field) != (model, field.name):
                        raise ValueError(
                            f"reverse name clash on {target}.{related}: "
                            f"{model.__name__}.{field.name} vs "
                            f"{other_model.__name__}.{other_field}"
                        )
                cache[target][related] = (model, field.name)
        self._reverse_cache = cache

    # -- Figure 13 introspection ----------------------------------------------

    def related_model_count(self, model: type[Model]) -> int:
        """Number of distinct models associated with ``model``.

        Counts both outgoing FK targets and models with FKs pointing here —
        the quantity plotted in the paper's Figure 13.
        """
        related: set[str] = set()
        for field in model._meta.fields.values():
            if isinstance(field, ForeignKey):
                related.add(field.to.__name__)
        for source_model, _field in self.reverse_relations(model).values():
            related.add(source_model.__name__)
        related.discard(model.__name__)
        return len(related)


#: The process-wide registry all concrete models register with.
model_registry = ModelRegistry()


class ModelOptions:
    """Per-model metadata collected from the inner ``Meta`` class."""

    def __init__(
        self,
        model_name: str,
        fields: dict[str, Field],
        group: ModelGroup | None,
        abstract: bool,
        unique_together: tuple[tuple[str, ...], ...],
    ):
        self.model_name = model_name
        self.fields = fields
        self.group = group
        self.abstract = abstract
        self.unique_together = unique_together
        # Partitioned views, computed once (hot path in query evaluation).
        self.fk_fields: dict[str, ForeignKey] = {
            n: f for n, f in fields.items() if isinstance(f, ForeignKey)
        }
        self.value_fields: dict[str, Field] = {
            n: f for n, f in fields.items() if not isinstance(f, ForeignKey)
        }

    def describe(self) -> dict[str, Any]:
        """Introspection record for the auto-generated RPC schema."""
        return {
            "model": self.model_name,
            "group": self.group.value if self.group else None,
            "fields": [f.describe() for f in self.fields.values()],
            "unique_together": [list(group) for group in self.unique_together],
        }


class ModelMeta(type):
    """Collects ``Field`` attributes into ``_meta`` and registers the model."""

    def __new__(
        mcls, name: str, bases: tuple[type, ...], namespace: dict[str, Any]
    ) -> ModelMeta:
        cls = super().__new__(mcls, name, bases, namespace)

        # Gather fields: inherited first (in MRO order), then own.
        fields: dict[str, Field] = {}
        for base in reversed(cls.__mro__[1:]):
            base_meta = getattr(base, "_meta", None)
            if isinstance(base_meta, ModelOptions):
                fields.update(base_meta.fields)
        for attr, value in namespace.items():
            if isinstance(value, Field):
                value.name = attr
                value.model = cls
                fields[attr] = value

        meta_cls = namespace.get("Meta")
        abstract = bool(getattr(meta_cls, "abstract", False))
        group = getattr(meta_cls, "group", None)
        if group is None and not abstract:
            # Inherit the group from the nearest concrete/abstract ancestor.
            for base in cls.__mro__[1:]:
                base_meta = getattr(base, "_meta", None)
                if isinstance(base_meta, ModelOptions) and base_meta.group:
                    group = base_meta.group
                    break
        unique_together = tuple(
            tuple(group_fields) for group_fields in getattr(meta_cls, "unique_together", ())
        )

        cls._meta = ModelOptions(name, fields, group, abstract, unique_together)

        if name != "Model" and not abstract:
            if group is None:
                raise TypeError(
                    f"concrete model {name} must declare Meta.group "
                    "(ModelGroup.DESIRED or ModelGroup.DERIVED)"
                )
            model_registry.register(cls)  # type: ignore[arg-type]
        return cls


class Model(metaclass=ModelMeta):
    """Base class of every FBNet object.

    Instances are created with keyword arguments for their fields::

        pif = PhysicalInterface(name="et1/1", linecard=lc, agg_interface=agg)

    Fields that declare ``null=True`` or a default may be omitted; all other
    fields are required.  Objects are free-floating until saved into an
    :class:`~repro.fbnet.store.ObjectStore`, which assigns ``id``.
    """

    _meta: ClassVar[ModelOptions]

    class Meta:
        abstract = True

    def __init__(self, **kwargs: Any):
        #: Store-assigned primary key; ``None`` while unsaved.
        self.id: int | None = None
        #: Back-reference to the owning store (set on save).
        self._store: Any = None

        meta = type(self)._meta
        unknown = set(kwargs) - set(meta.fields)
        if unknown:
            raise ValidationError(
                f"{type(self).__name__}: unknown field(s) {sorted(unknown)}"
            )
        for name, field in meta.fields.items():
            if name in kwargs:
                setattr(self, name, kwargs[name])
            elif field.has_default:
                setattr(self, name, field.get_default())
            elif field.null:
                self.__dict__[name] = None
            else:
                raise ValidationError(
                    f"{type(self).__name__}: missing required field {name!r}"
                )

    # -- attribute access helpers ---------------------------------------------

    def __getattr__(self, name: str) -> Any:
        # Only called when normal lookup fails.
        meta = type(self)._meta
        # ``<fk>_id`` raw-id access, Django style.
        if name.endswith("_id"):
            fk_name = name[: -len("_id")]
            if fk_name in meta.fk_fields:
                return self.__dict__.get(fk_name)
        # Reverse connections (API-only, resolved through the store).
        reverse = model_registry.reverse_relations(type(self))
        if name in reverse:
            if self._store is None or self.id is None:
                raise AttributeError(
                    f"{type(self).__name__}.{name}: reverse relations require "
                    "a saved object"
                )
            source_model, fk_field = reverse[name]
            return self._store.referrers(self, source_model, fk_field)
        raise AttributeError(f"{type(self).__name__} has no attribute {name!r}")

    def related(self, fk_name: str) -> Model | None:
        """Resolve forward FK ``fk_name`` to the referenced object."""
        meta = type(self)._meta
        if fk_name not in meta.fk_fields:
            raise AttributeError(f"{type(self).__name__}.{fk_name} is not a ForeignKey")
        raw = self.__dict__.get(fk_name)
        if raw is None:
            return None
        if self._store is None:
            raise ValidationError(
                f"{type(self).__name__}.{fk_name}: cannot resolve FK on an "
                "object not attached to a store"
            )
        return self._store.get(meta.fk_fields[fk_name].to, raw)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Flat dict of field values (FKs as raw ids), plus ``id``."""
        data: dict[str, Any] = {"id": self.id}
        for name in type(self)._meta.fields:
            value = self.__dict__.get(name)
            if isinstance(value, Enum):
                value = value.value
            data[name] = value
        return data

    def clone_values(self) -> dict[str, Any]:
        """Raw field values suitable for reconstructing the object."""
        return {name: self.__dict__.get(name) for name in type(self)._meta.fields}

    def __repr__(self) -> str:
        label = self.__dict__.get("name")
        ident = f" name={label!r}" if isinstance(label, str) else ""
        return f"<{type(self).__name__} id={self.id}{ident}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Model):
            return NotImplemented
        if type(self) is not type(other):
            return False
        if self.id is not None and other.id is not None:
            return self.id == other.id and self._store is other._store
        return self is other

    def __hash__(self) -> int:
        if self.id is not None:
            return hash((type(self).__name__, self.id, id(self._store)))
        return object.__hash__(self)
