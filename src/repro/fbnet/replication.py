"""FBNet's multi-region replication and failover (paper section 4.3.3).

The paper runs one MySQL master plus one slave per data center, replicated
asynchronously with a typical lag under one second.  Reads are served by
region-local service replicas; writes are forwarded to the master region.
This module reproduces those semantics on the simulated clock:

* every committed master transaction ships to each replica region and is
  applied after that region's replication lag;
* a replica database is disabled when it fails health checks or when its
  replication lag exceeds the configured maximum — its region's service
  replicas then *redirect reads to the master database* until it recovers;
* when the master fails, the replica in the **nearest** region is promoted;
  the new master serves all reads and writes destined for the old master;
* when a service replica process crashes, requests redirect to surviving
  replicas in the same region, then to the nearest live region.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import Any

from repro import faults, obs
from repro.common.errors import ReplicaUnavailable, ReplicationError
from repro.faults.retry import GiveUp, RetryPolicy
from repro.fbnet.query import Query
from repro.fbnet.rpc import (
    ReadCache,
    RpcRequest,
    RpcResponse,
    ServiceReplica,
    _normalize_spec,
)
from repro.fbnet.store import ChangeRecord, ObjectStore
from repro.simulation.clock import EventScheduler

__all__ = ["FBNetClient", "RegionState", "ReplicatedFBNet"]

#: Consistency levels accepted by the client read path.
READ_LOCAL = "local"
READ_AFTER_WRITE = "read-after-write"


@dataclass
class RegionState:
    """Per-region databases and service replicas."""

    name: str
    store: ObjectStore
    db_healthy: bool = True
    #: Replication lag applied to records shipped to this region.
    lag: float = 0.5
    #: Commit timestamps of shipped-but-unapplied batches (lag measurement).
    in_flight: list[float] = dc_field(default_factory=list)
    #: ``(base journal position, records)`` batches that arrived while the
    #: database was disabled.
    backlog: list[tuple[int, list[ChangeRecord]]] = dc_field(default_factory=list)
    read_replicas: list[ServiceReplica] = dc_field(default_factory=list)
    write_replicas: list[ServiceReplica] = dc_field(default_factory=list)
    #: The region's shared read-through cache (``cache_reads`` deployments).
    #: Replication applies land in the store journal, so the cache
    #: invalidates on apply with no extra shipping.
    cache: ReadCache | None = None

    def applied_position(self) -> int:
        return self.store.journal_position


class ReplicatedFBNet:
    """A multi-region FBNet deployment: one master, one replica per region.

    ``regions`` is ordered by geography: the distance between two regions
    is the difference of their indices, and "nearest" follows that order
    (the paper promotes the slave in the nearest data center).
    """

    def __init__(
        self,
        regions: list[str],
        master_region: str,
        scheduler: EventScheduler | None = None,
        *,
        replication_lag: float = 0.5,
        read_replicas_per_region: int = 2,
        write_replicas: int = 2,
        max_lag: float = 30.0,
        retry_policy: RetryPolicy | None = None,
        store_factory: Callable[[str], ObjectStore] | None = None,
        cache_reads: bool = False,
    ):
        if master_region not in regions:
            raise ValueError(f"master region {master_region!r} not in {regions}")
        if len(set(regions)) != len(regions):
            raise ValueError("duplicate region names")
        self.scheduler = scheduler or EventScheduler()
        #: How clients and the replication receive path retry transient faults.
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay=0.5, multiplier=2.0, max_delay=10.0
        )
        self.region_order = list(regions)
        self.master_region = master_region
        self.max_lag = max_lag
        #: How each region's store is built — lets a deployment replicate
        #: sharded stores (``lambda name: ShardedObjectStore(name=name)``).
        self._store_factory = store_factory or (
            lambda name: ObjectStore(name=name)
        )
        self.regions: dict[str, RegionState] = {}
        for region in regions:
            state = RegionState(
                name=region,
                store=self._store_factory(f"fbnet-{region}"),
                lag=replication_lag,
            )
            if cache_reads:
                # One cache per region, shared by its read replicas, so a
                # fill through any replica serves the whole region.
                state.cache = ReadCache(state.store, name=f"rpc-{region}")
            for i in range(read_replicas_per_region):
                state.read_replicas.append(
                    ServiceReplica(
                        f"{region}-read-{i}", region, "read", state.store,
                        cache=state.cache,
                    )
                )
            self.regions[region] = state
        # Write replicas are deployed in the master region only.
        master = self.regions[master_region]
        for i in range(write_replicas):
            master.write_replicas.append(
                ServiceReplica(f"{master_region}-write-{i}", master_region, "write", master.store)
            )
        self._install_shipping(master.store)
        #: Promotion history for tests/benches: (time, old master, new master).
        self.promotions: list[tuple[float, str, str]] = []

    # ------------------------------------------------------------------
    # Shipping
    # ------------------------------------------------------------------

    @property
    def master(self) -> RegionState:
        return self.regions[self.master_region]

    def _install_shipping(self, master_store: ObjectStore) -> None:
        # Each shipped batch carries the master journal position of its
        # first record, so receivers can skip already-applied records (a
        # batch redelivered after a resync) and detect gaps.  Listener
        # delivery is in order — including fault-deferred backlog flushes —
        # so a monotonic counter from the install-time position is exact.
        shipped_position = master_store.journal_position

        def ship(records: list[ChangeRecord]) -> None:
            nonlocal shipped_position
            if not records:
                return
            base = shipped_position
            shipped_position += len(records)
            committed_at = self.scheduler.clock.now
            for region in self.regions.values():
                if region.store is master_store:
                    continue
                region.in_flight.append(committed_at)
                batch = list(records)
                self.scheduler.call_at(
                    committed_at + region.lag,
                    lambda r=region, b=batch, t=committed_at, p=base: self._arrive(
                        r, b, t, base=p
                    ),
                    name=f"replicate->{region.name}",
                )

        master_store.add_commit_listener(ship)

    def _arrive(
        self,
        region: RegionState,
        records: list[ChangeRecord],
        committed_at: float,
        attempt: int = 0,
        base: int = 0,
    ) -> None:
        if region.name == self.master_region:
            if committed_at in region.in_flight:
                region.in_flight.remove(committed_at)
            return  # region was promoted while the batch was in flight
        if faults.should_inject("replication.apply", region=region.name):
            # A lag spike: the batch fails to apply and is redelivered after
            # a backoff.  The commit timestamp stays in ``in_flight`` so
            # measured_lag() grows and check_health() can disable the DB —
            # the paper's high-replication-lag scenario.
            obs.counter("replication.retry", region=region.name).inc()
            delay = max(self.retry_policy.backoff(attempt), region.lag)
            self.scheduler.call_after(
                delay,
                lambda: self._arrive(region, records, committed_at, attempt + 1, base),
                name=f"replicate-retry->{region.name}",
            )
            return
        if committed_at in region.in_flight:
            region.in_flight.remove(committed_at)
        obs.counter("store.replication.batches", region=region.name).inc()
        obs.gauge("store.replication.lag", region=region.name).set(
            self.scheduler.clock.now - committed_at, at=self.scheduler.clock.now
        )
        if not region.db_healthy:
            region.backlog.append((base, records))
            return
        self._deliver(region, records, base)

    def _deliver(
        self,
        region: RegionState,
        records: list[ChangeRecord],
        base: int,
        redeliveries: int = 0,
    ) -> None:
        """Apply an in-order batch, deferring out-of-order arrivals.

        ``base`` ahead of the replica's applied position means an earlier
        batch is still in flight (retry backoff can reorder deliveries) —
        redeliver after a lag's wait; if the gap never closes, fall back
        to a resync, which covers this batch too.
        """
        if region.name == self.master_region:
            return  # promoted while a redelivery was pending
        applied = region.applied_position()
        if base > applied:
            if redeliveries >= 8:
                obs.counter("replication.gap_resync", region=region.name).inc()
                self._resync(region)
                return
            self.scheduler.call_after(
                max(region.lag, 0.1),
                lambda: self._deliver(region, records, base, redeliveries + 1),
                name=f"replicate-reorder->{region.name}",
            )
            return
        self._apply_batch(region, records, base)

    @staticmethod
    def _apply_batch(
        region: RegionState, records: list[ChangeRecord], base: int
    ) -> None:
        for offset, record in enumerate(records):
            if base + offset < region.applied_position():
                continue  # already applied (redelivery after a resync)
            region.store.apply_record(record)

    # ------------------------------------------------------------------
    # Health and failover
    # ------------------------------------------------------------------

    def measured_lag(self, region_name: str) -> float:
        """Replication lag of ``region_name``: age of its oldest in-flight batch."""
        region = self.regions[region_name]
        if not region.in_flight:
            return 0.0
        return self.scheduler.clock.now - min(region.in_flight)

    def check_health(self) -> list[str]:
        """Run the health checker once; returns regions disabled this pass.

        A replica database is disabled when its replication lag exceeds
        ``max_lag`` (the paper disables slaves experiencing high lag).
        """
        disabled = []
        for region in self.regions.values():
            if region.name == self.master_region or not region.db_healthy:
                continue
            lag = self.measured_lag(region.name)
            obs.gauge("store.replication.lag", region=region.name).set(
                lag, at=self.scheduler.clock.now
            )
            if lag > self.max_lag:
                self.disable_database(region.name)
                disabled.append(region.name)
        return disabled

    def disable_database(self, region_name: str) -> None:
        """Take a region's database out of service.

        Its read service replicas temporarily redirect reads to the master
        database (paper section 4.3.3).
        """
        region = self.regions[region_name]
        region.db_healthy = False
        if region_name == self.master_region:
            return  # master failure is handled by promote()
        for replica in region.read_replicas:
            # While redirected, cached deployments share the master
            # region's cache — it is bound to the master store.
            replica.retarget(self.master.store, self.master.cache)

    def recover_database(self, region_name: str) -> None:
        """Bring a region's database back: resync, drain backlog, reattach."""
        region = self.regions[region_name]
        if region.db_healthy:
            return
        if region_name == self.master_region:
            raise ReplicationError(
                "recovering a failed master requires promote() first; "
                "it rejoins as a replica"
            )
        self._resync(region)
        region.db_healthy = True
        for replica in region.read_replicas:
            replica.retarget(region.store, region.cache)

    def _resync(self, region: RegionState) -> None:
        """Bring a region's store in line with the master's journal.

        When the replica's journal is a prefix of the master's — the
        normal case: replication only ever lags, it does not diverge —
        the resync is *incremental*: just the tail past the replica's
        ``applied_position()`` is applied.  Any divergence (a record that
        differs, or a replica ahead of the master, as after a lossy
        failover) falls back to a full rebuild from scratch.
        """
        master_journal = self.master.store.journal
        position = region.applied_position()
        if (
            position <= len(master_journal)
            and region.store.journal == master_journal[:position]
        ):
            mode = "incremental"
            for record in master_journal[position:]:
                region.store.apply_record(record)
        else:
            mode = "full"
            old_store = region.store
            fresh = self._store_factory(f"fbnet-{region.name}")
            for record in master_journal:
                fresh.apply_record(record)
            region.store.detach_durability()
            region.store = fresh
            if region.cache is not None:
                # A full rebuild replaces the store, so the cache's
                # journal cursors mean nothing — start one empty over the
                # fresh store.  (Incremental resync keeps the cache: the
                # applied tail lands in the journal and ``advance()``
                # invalidates precisely.)
                region.cache = ReadCache(fresh, name=region.cache.name)
            for replica in region.read_replicas:
                if replica._store is old_store:
                    replica.retarget(fresh, region.cache)
        obs.counter(
            "store.replication.resync", region=region.name, mode=mode
        ).inc()
        region.backlog.clear()
        region.in_flight.clear()

    def fail_master(self) -> None:
        """Simulate the master database going down (writes now fail)."""
        self.master.db_healthy = False

    def promote_nearest(self) -> str:
        """Promote the replica in the nearest healthy region to master.

        The promoted store may miss in-flight transactions (asynchronous
        replication loses the tail on master failure); everything already
        applied there is preserved.  Returns the new master region.
        """
        old_master = self.master_region
        candidates = sorted(
            (
                region
                for region in self.regions.values()
                if region.name != old_master and region.db_healthy
            ),
            key=lambda region: self._distance(old_master, region.name),
        )
        new_master: RegionState | None = None
        for candidate in candidates:
            if faults.should_inject("replication.promote", region=candidate.name):
                # The candidate failed its promotion health check; fall
                # through to the next-nearest healthy replica.
                obs.counter(
                    "replication.promote_skipped", region=candidate.name
                ).inc()
                continue
            new_master = candidate
            break
        if new_master is None:
            raise ReplicationError("no healthy replica available for promotion")
        # Apply anything that already arrived but was backlogged, oldest
        # (lowest base position) first, skipping already-applied records.
        for batch_base, batch in sorted(new_master.backlog, key=lambda item: item[0]):
            if batch_base > new_master.applied_position():
                break  # a gap: the missing batch died with the old master
            self._apply_batch(new_master, batch, batch_base)
        new_master.backlog.clear()
        self.master_region = new_master.name
        self.promotions.append(
            (self.scheduler.clock.now, old_master, new_master.name)
        )
        # Move the write tier to the new master region.
        old = self.regions[old_master]
        for replica in old.write_replicas:
            replica.crash()
        if not new_master.write_replicas:
            for i in range(max(1, len(old.write_replicas))):
                new_master.write_replicas.append(
                    ServiceReplica(
                        f"{new_master.name}-write-{i}",
                        new_master.name,
                        "write",
                        new_master.store,
                    )
                )
        self._install_shipping(new_master.store)
        # Healthy replicas resync from the new master to a consistent base.
        for region in self.regions.values():
            if region.name == self.master_region or not region.db_healthy:
                continue
            self._resync(region)
            for replica in region.read_replicas:
                replica.retarget(region.store, region.cache)
        return new_master.name

    def rejoin_old_master(self, region_name: str) -> None:
        """A recovered ex-master rejoins as a replica of the current master."""
        region = self.regions[region_name]
        if region_name == self.master_region:
            raise ReplicationError(f"{region_name} is the current master")
        self._resync(region)
        region.db_healthy = True
        for replica in region.read_replicas:
            replica.retarget(region.store, region.cache)

    def _distance(self, a: str, b: str) -> int:
        return abs(self.region_order.index(a) - self.region_order.index(b))

    # ------------------------------------------------------------------
    # Durability (crash-consistent master recovery)
    # ------------------------------------------------------------------

    def attach_master_durability(
        self, root: Any, *, snapshot_every: int | None = None, fsync: bool = False
    ):
        """Journal the master store's commits to a WAL under ``root``."""
        return self.master.store.attach_durability(
            root, snapshot_every=snapshot_every, fsync=fsync
        )

    def recover_master(
        self, root: Any, *, snapshot_every: int | None = None, fsync: bool = False
    ) -> ObjectStore:
        """Replace a crashed master's store with one recovered from disk.

        The recovered store takes over the master region: shipping is
        reinstalled, the region's service replicas retarget it, and every
        healthy replica resyncs against the recovered journal.  Because
        shipping happens *after* the WAL append, a replica's journal is
        always a prefix of what recovery restores — the resyncs run in
        incremental mode.
        """
        master = self.master
        master.store.detach_durability()
        from repro.fbnet.sharding import MANIFEST_NAME, ShardedObjectStore

        store_cls = (
            ShardedObjectStore
            if (Path(root) / MANIFEST_NAME).is_file()
            else ObjectStore
        )
        recovered = store_cls.recover(
            root,
            name=f"fbnet-{self.master_region}",
            snapshot_every=snapshot_every,
            fsync=fsync,
        )
        master.store = recovered
        master.db_healthy = True
        master.in_flight.clear()
        master.backlog.clear()
        if master.cache is not None:
            master.cache = ReadCache(recovered, name=master.cache.name)
        self._install_shipping(recovered)
        for replica in master.read_replicas:
            replica.retarget(recovered, master.cache)
        for replica in master.write_replicas:
            replica.retarget(recovered)
        for region in self.regions.values():
            if region.name == self.master_region or not region.db_healthy:
                continue
            self._resync(region)
            for replica in region.read_replicas:
                replica.retarget(region.store, region.cache)
        return recovered

    # ------------------------------------------------------------------
    # Client access
    # ------------------------------------------------------------------

    def client(self, region_name: str) -> FBNetClient:
        """An application client homed in ``region_name``."""
        if region_name not in self.regions:
            raise ValueError(f"unknown region {region_name!r}")
        return FBNetClient(self, region_name)

    def _read_candidates(
        self, region_name: str, consistency: str
    ) -> list[ServiceReplica]:
        if consistency == READ_AFTER_WRITE:
            # Read service replicas deployed for the master database.
            home: list[str] = [self.master_region]
        else:
            home = [region_name]
        ordered_regions = home + sorted(
            (r for r in self.region_order if r not in home),
            key=lambda r: self._distance(home[0], r),
        )
        candidates: list[ServiceReplica] = []
        for name in ordered_regions:
            candidates.extend(
                replica
                for replica in self.regions[name].read_replicas
                if replica.healthy
            )
        return candidates

    def _write_candidates(self) -> list[ServiceReplica]:
        if not self.master.db_healthy:
            return []
        return [r for r in self.master.write_replicas if r.healthy]


class FBNetClient:
    """A region-homed application client speaking the RPC wire format."""

    def __init__(self, cluster: ReplicatedFBNet, region: str):
        self._cluster = cluster
        self.region = region

    # -- reads ---------------------------------------------------------------

    def get(
        self,
        model_name: str,
        fields: list[str] | None = None,
        query: Query | None = None,
        consistency: str = READ_LOCAL,
    ) -> list[dict[str, Any]]:
        request = RpcRequest(
            service="read",
            method="get",
            args={
                "model": model_name,
                "fields": fields,
                "query": query.to_wire() if query else None,
            },
        )
        return self._call(
            request,
            lambda: self._cluster._read_candidates(self.region, consistency),
        )

    def multi_get(
        self,
        specs: list[Any],
        consistency: str = READ_LOCAL,
    ) -> list[list[dict[str, Any]]]:
        """Batch many ``get`` specs into one RPC (one result list per spec).

        Specs are ``(model, fields, query)`` tuples or their wire-dict
        form; against a caching deployment the whole batch is served from
        the region cache, with misses filled together.
        """
        wire_specs = []
        for spec in specs:
            model, fields, query = _normalize_spec(spec)
            wire_specs.append(
                {
                    "model": model,
                    "fields": list(fields) if fields is not None else None,
                    "query": query,
                }
            )
        request = RpcRequest(
            service="read", method="multi_get", args={"specs": wire_specs}
        )
        return self._call(
            request,
            lambda: self._cluster._read_candidates(self.region, consistency),
        )

    def count(
        self,
        model_name: str,
        query: Query | None = None,
        consistency: str = READ_LOCAL,
    ) -> int:
        request = RpcRequest(
            service="read",
            method="count",
            args={"model": model_name, "query": query.to_wire() if query else None},
        )
        return self._call(
            request,
            lambda: self._cluster._read_candidates(self.region, consistency),
        )

    # -- writes (forwarded to the master region) ------------------------------

    def create_objects(self, specs: list[tuple[str, dict[str, Any]]]) -> list[int]:
        request = RpcRequest(
            service="write",
            method="create_objects",
            args={"specs": [[name, values] for name, values in specs]},
        )
        return self._call(request, self._cluster._write_candidates, write=True)

    def update_objects(self, updates: list[tuple[str, int, dict[str, Any]]]) -> int:
        request = RpcRequest(
            service="write",
            method="update_objects",
            args={"updates": [[m, i, v] for m, i, v in updates]},
        )
        return self._call(request, self._cluster._write_candidates, write=True)

    def delete_objects(self, targets: list[tuple[str, int]]) -> int:
        request = RpcRequest(
            service="write",
            method="delete_objects",
            args={"targets": [[m, i] for m, i in targets]},
        )
        return self._call(request, self._cluster._write_candidates, write=True)

    # -- plumbing --------------------------------------------------------------

    def _call(
        self,
        request: RpcRequest,
        candidates: Callable[[], list[ServiceReplica]] | list[ServiceReplica],
        write: bool = False,
    ) -> Any:
        """One logical RPC: sweep candidates, retrying transient failures.

        Each *sweep* walks the current candidate list (re-evaluated per
        attempt — failover may have changed it), redirecting past
        unavailable replicas.  When a whole sweep fails transiently the
        cluster's :class:`RetryPolicy` backs off on the simulated clock
        and tries again (``rpc.retry``); non-transient errors (bad
        requests, server-side exceptions) propagate immediately.
        """
        wire = request.to_wire()
        candidates_fn = candidates if callable(candidates) else lambda: candidates

        def sweep() -> Any:
            candidates = candidates_fn()
            if not candidates:
                kind = "master write" if write else "read"
                raise ReplicaUnavailable(f"no live {kind} service replicas")
            last_error: Exception | None = None
            for replica in candidates:
                try:
                    return RpcResponse.from_wire(replica.handle(wire)).result()
                except ReplicaUnavailable as exc:
                    last_error = exc
                    if "is down" in str(exc):
                        obs.counter(
                            "rpc.redirect", service=request.service, region=self.region
                        ).inc()
                    continue  # redirect to the next replica
            raise ReplicaUnavailable(f"all service replicas failed: {last_error}")

        policy = self._cluster.retry_policy
        try:
            return policy.execute(
                sweep,
                retryable=(ReplicaUnavailable,),
                sleep=self._cluster.scheduler.run_for,
                clock=self._cluster.scheduler.clock,
                on_retry=lambda _i, _exc: obs.counter(
                    "rpc.retry", service=request.service, region=self.region
                ).inc(),
            )
        except GiveUp as exc:
            raise ReplicationError(str(exc.last_error)) from exc.last_error
