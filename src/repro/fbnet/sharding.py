"""Region-sharded FBNet store (ROADMAP item 1; paper sections 4.3.1/4.3.3).

The paper's FBNet holds hundreds of thousands of objects; one in-process
table set stops being a credible stand-in at that scale.  This module
partitions the store by *region*:

* :class:`ShardAssignment` — the deterministic home-shard rule.  An
  object's *region token* is the lexicographically smallest region name
  reachable through its foreign keys (so a cross-region circuit homes on
  the smaller of its two endpoint regions, and both sides of the
  replication pair compute the same answer from the same journal).
  Catalog objects with no located ancestor (hardware profiles, prefix
  pools) home on shard 0.  The token is hashed, not range-mapped, so
  adding regions spreads load without reassigning existing ones.
* :class:`_ShardStore` — one partition.  It owns its tables, change
  journal, and WAL root, but shares the router's unique/reverse indexes
  (global constraints need a global view) and joins the router's
  transaction whenever it is written.
* :class:`ShardedObjectStore` — the router.  It keeps the public
  :class:`~repro.fbnet.store.ObjectStore` API byte-compatible: global
  transaction ids, a global journal in exact write order, and query
  results merged in shard-key order then sorted by id — identical at any
  shard count and any worker count.

Consistency model (after the partitioned-consistency reference,
arXiv:1609.06678): each shard is an independently durable journal; a
router transaction becomes durable as a set of per-shard WAL frames
sharing one transaction id.  A crash between shard flushes leaves a
*per-shard durable prefix* — every shard recovers to its own last
durable commit, and cross-shard atomicity is restored by replaying the
shared journal, not by a distributed commit protocol.
"""

from __future__ import annotations

import json
import os
import sys
from collections import Counter
from contextlib import ExitStack, contextmanager
from hashlib import sha256
from pathlib import Path
from time import perf_counter
from typing import Any, Iterator, TypeVar

from repro import faults, obs, parallel
from repro.common.errors import (
    DurabilityError,
    IntegrityError,
    ObjectDoesNotExist,
    TransactionError,
)
from repro.fbnet.base import Model, model_registry
from repro.fbnet.query import Query, ensure_query, indexable_equalities
from repro.fbnet.store import ChangeOp, ChangeRecord, ObjectStore

__all__ = [
    "MANIFEST_NAME",
    "ORDER_LOG_NAME",
    "SHARDS_ENV",
    "ShardAssignment",
    "ShardedDurability",
    "ShardedObjectStore",
]

M = TypeVar("M", bound=Model)

#: Environment variable read when ``ShardedObjectStore(shards=None)``.
SHARDS_ENV = "FBNET_SHARDS"

#: Default partition count when neither argument nor environment says.
DEFAULT_SHARDS = 4

#: Marker file a sharded durability root carries next to its shard dirs.
MANIFEST_NAME = "shards.json"
#: Append-only commit-interleave metadata next to the shard roots: one
#: JSON line per commit, ``{"txn": id, "shards": [indices in write
#: order]}``.  Recovery uses it to reconstruct the global journal's exact
#: cross-shard interleave; a torn tail only degrades that transaction to
#: shard-order merging (same state, approximate provenance).
ORDER_LOG_NAME = "order.log"

#: FK chains in the model graph are at most ~6 hops (interface → linecard
#: → device → cluster → site → region); the cap only guards pathological
#: cycles.
_TOKEN_DEPTH_LIMIT = 16

#: Fan a cross-shard scan out through the worker pool only past this many
#: candidate rows — below it, thread handoff costs more than the scan.
FANOUT_MIN_ROWS = 512

_MISSING = object()


def shard_count_from_env() -> int:
    """The shard count :data:`SHARDS_ENV` requests (default 4)."""
    raw = os.environ.get(SHARDS_ENV, "").strip()
    if not raw:
        return DEFAULT_SHARDS
    try:
        count = int(raw)
    except ValueError:
        raise ValueError(f"{SHARDS_ENV}={raw!r} is not an integer") from None
    if count < 1:
        raise ValueError(f"{SHARDS_ENV} must be >= 1, not {count}")
    return count


class ShardAssignment:
    """The deterministic home-shard rule.

    ``token()`` walks an object's FK graph to the set of reachable
    :class:`Region` names and takes the smallest; ``shard_index()`` hashes
    that token onto a shard.  The walk reads raw FK ids from a field-value
    mapping (a live ``__dict__`` on the master, ``ChangeRecord.values`` on
    a replica), so both sides of replication agree from the same journal
    prefix.  Assignment is *sticky*: it runs once at create time and the
    object never migrates, even if its ancestry later moves.
    """

    def __init__(self, shard_count: int):
        if shard_count < 1:
            raise ValueError(f"shard count must be >= 1, not {shard_count}")
        self.shard_count = shard_count

    def token(
        self,
        model: type[Model],
        values: dict[str, Any],
        resolver,
        cache: dict[int, str | None] | None = None,
        _depth: int = 0,
    ) -> str | None:
        """The region token of an object, or ``None`` for catalog objects."""
        if model.__name__ == "Region":
            name = values.get("name")
            return str(name) if name is not None else None
        if _depth >= _TOKEN_DEPTH_LIMIT:
            return None
        tokens: list[str] = []
        for fk_name in sorted(model._meta.fk_fields):
            raw = values.get(fk_name)
            if not isinstance(raw, int):
                continue
            token = cache.get(raw, _MISSING) if cache is not None else _MISSING
            if token is _MISSING:
                target = resolver(model._meta.fk_fields[fk_name].to, raw)
                if target is None:
                    continue
                token = self.token(
                    type(target), target.__dict__, resolver, cache, _depth + 1
                )
                if cache is not None:
                    cache[raw] = token
            if token is not None:
                tokens.append(token)
        return min(tokens) if tokens else None

    def shard_of_token(self, token: str | None) -> int:
        """Hash a region token onto a shard (tokenless objects → shard 0)."""
        if self.shard_count == 1 or token is None:
            return 0
        digest = sha256(token.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") % self.shard_count

    def shard_index(
        self,
        model: type[Model],
        values: dict[str, Any],
        resolver,
        cache: dict[int, str | None] | None = None,
    ) -> int:
        if self.shard_count == 1:
            return 0
        return self.shard_of_token(self.token(model, values, resolver, cache))


class _ShardStore(ObjectStore):
    """One partition of a :class:`ShardedObjectStore`.

    Owns its ``_tables``, journal, and durability root; shares the
    router's unique/reverse indexes and known-values shadow by reference
    so constraint checks and ``referrers()`` stay global.  Every write
    joins the router's transaction, so a partition never commits alone.
    """

    def __init__(self, router: ShardedObjectStore, index: int):
        super().__init__(name=f"{router.name}/s{index:02d}")
        self._router = router
        self.shard_index = index
        self.shard_key = f"s{index:02d}"
        # Global indexes, shared by reference with the router (and thus
        # with every sibling shard).
        self._reverse_index = router._reverse_index
        self._unique_index = router._unique_index
        self._unique_together_index = router._unique_together_index
        self._known_values = router._known_values

    # -- id allocation & resolution ------------------------------------

    def _alloc_id(self) -> int:
        # One global sequence: ids say nothing about placement, and the
        # sharded store stays id-compatible with a single store.
        allocated = self._router._alloc_id()
        self._next_id = self._router._next_id
        return allocated

    def _resolve(self, model: type[M], obj_id: int) -> M | None:
        found = super()._resolve(model, obj_id)
        if found is not None:
            return found
        return self._router._home_resolve(model, obj_id)

    def _row(self, model_name: str, obj_id: int) -> Model | None:
        obj = self._tables.get(model_name, {}).get(obj_id)
        if obj is not None:
            return obj
        return self._router._row(model_name, obj_id)

    # -- home map + token cache upkeep ---------------------------------

    def _index(self, obj: Model) -> None:
        super()._index(obj)
        assert obj.id is not None
        self._router._home[obj.id] = self.shard_index
        self._router._token_cache.pop(obj.id, None)

    def _unindex(self, obj: Model) -> None:
        super()._unindex(obj)
        if obj.id is not None:
            self._router._home.pop(obj.id, None)
            self._router._token_cache.pop(obj.id, None)

    # -- read tracking lives on the router -----------------------------

    @property
    def _read_trackers(self):
        return self._router._read_trackers

    @contextmanager
    def _suspend_tracking(self) -> Iterator[None]:
        with self._router._suspend_tracking():
            yield

    # -- transactions join the router ----------------------------------

    @contextmanager
    def _implicit_txn(self) -> Iterator[None]:
        router = self._router
        if router._txn_depth > 0:
            router._join_txn(self)
            yield
        else:
            with router.transaction():
                router._join_txn(self)
                yield

    def _record(
        self,
        op: ChangeOp,
        obj: Model,
        obj_id: int,
        values: dict[str, Any],
        changed: tuple[str, ...],
    ) -> None:
        super()._record(op, obj, obj_id, values, changed)
        # The router's journal preserves the *global* write order across
        # shards; each shard's own journal keeps only its rows.
        self._router._pending_records.append(self._pending_records[-1])
        self._router._pending_shards.append(self.shard_index)

    def _owning_store(self, obj: Model) -> ObjectStore:
        owner = obj._store
        if owner is None or owner is self:
            return self
        # A cascade crossing a shard boundary: the referrer's partition
        # must be inside the transaction before it takes writes.
        self._router._join_txn(owner)
        return owner


class ShardedDurability:
    """The per-shard durability engines behind one sharded store.

    Besides fanning snapshot/close to the shard engines, it appends the
    commit order log: data lives only in the shard WALs, this file holds
    nothing but each transaction's cross-shard record interleave.
    """

    def __init__(
        self,
        store: ShardedObjectStore,
        engines: list[Any],
        order_path: Any | None = None,
        fsync: bool = False,
    ):
        self.store = store
        self.engines = list(engines)
        self._fsync = fsync
        self._order_file = (
            open(order_path, "a", encoding="utf-8")
            if order_path is not None
            else None
        )

    def log_order(self, txn_id: int, shard_sequence: list[int]) -> None:
        if self._order_file is None:
            return
        line = json.dumps(
            {"txn": txn_id, "shards": list(shard_sequence)},
            separators=(",", ":"),
        )
        self._order_file.write(line + "\n")
        self._order_file.flush()
        if self._fsync:
            os.fsync(self._order_file.fileno())

    @property
    def position(self) -> int:
        return sum(engine.position for engine in self.engines)

    def snapshot(self) -> list[Any]:
        return [engine.snapshot() for engine in self.engines]

    def close(self) -> None:
        for engine in self.engines:
            engine.close()
        if self._order_file is not None:
            self._order_file.close()
            self._order_file = None


class ShardedObjectStore(ObjectStore):
    """An :class:`ObjectStore` partitioned by region.

    Drop-in compatible with the single store: global transaction ids, a
    global journal in exact write order, and query results identical
    byte-for-byte at any shard count and any worker count.  The router
    itself holds no rows — ``self._tables`` stays empty — but it owns the
    id/txn sequences, the shared indexes, the read trackers, and the
    commit listeners.
    """

    def __init__(self, shards: int | None = None, name: str = "fbnet"):
        super().__init__(name=name)
        count = shard_count_from_env() if shards is None else int(shards)
        if count < 1:
            raise ValueError(f"shard count must be >= 1, not {count}")
        self.assignment = ShardAssignment(count)
        #: object id -> index of the shard holding its row.
        self._home: dict[int, int] = {}
        #: object id -> region token, invalidated whenever the object's
        #: row is (re)indexed; evolution is journal-order-driven, so the
        #: master, every replica, and recovery all see the same cache.
        self._token_cache: dict[int, str | None] = {}
        self.shards: list[_ShardStore] = [
            _ShardStore(self, index) for index in range(count)
        ]
        # Router-level transaction state: which shards have joined, and
        # the stack that commits/rolls back their nested transactions.
        self._txn_stack: ExitStack | None = None
        self._txn_shards: set[int] = set()
        #: Shard index per pending record, in global write order — the
        #: commit's order-log entry.
        self._pending_shards: list[int] = []

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def _assign_shard(self, model: type[Model], values: dict[str, Any]) -> int:
        # The token walk resolves FK targets through the store; those are
        # placement lookups, not semantic reads.
        with self._suspend_tracking():
            return self.assignment.shard_index(
                model, values, self._home_resolve, self._token_cache
            )

    def shard_of(self, obj: Model) -> str:
        """The shard key (``"s00"``…) holding ``obj``."""
        if obj.id is None or obj.id not in self._home:
            raise ObjectDoesNotExist(f"{obj!r} is not stored here")
        return self.shards[self._home[obj.id]].shard_key

    def _home_resolve(self, model: type[M], obj_id: int) -> M | None:
        index = self._home.get(obj_id)
        if index is None:
            return None
        return ObjectStore._resolve(self.shards[index], model, obj_id)

    def _resolve(self, model: type[M], obj_id: int) -> M | None:
        return self._home_resolve(model, obj_id)

    def _row(self, model_name: str, obj_id: int) -> Model | None:
        index = self._home.get(obj_id)
        if index is None:
            return None
        return self.shards[index]._tables.get(model_name, {}).get(obj_id)

    def _iter_rows(self, model: type[M]) -> Iterator[M]:
        for shard in self.shards:
            yield from ObjectStore._iter_rows(shard, model)

    # ------------------------------------------------------------------
    # Transactions: one global id, N joined shards
    # ------------------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator[int]:
        if self._txn_depth == 0:
            self._current_txn_id = self._next_txn_id
            self._next_txn_id += 1
            self._pending_records = []
            self._pending_shards = []
            self._txn_shards = set()
            self._txn_stack = ExitStack()
            self._txn_started_at = perf_counter() if obs.enabled() else None
        self._txn_depth += 1
        txn_id = self._current_txn_id
        assert txn_id is not None
        try:
            yield txn_id
        except Exception:
            self._txn_depth -= 1
            if self._txn_depth == 0:
                self._abort_all()
            raise
        else:
            self._txn_depth -= 1
            if self._txn_depth == 0:
                self._commit_all()

    def _join_txn(self, shard: _ShardStore) -> None:
        """Pull ``shard`` into the open router transaction (idempotent)."""
        if self._txn_depth == 0 or self._txn_stack is None:
            raise TransactionError("shard write outside a router transaction")
        if shard.shard_index in self._txn_shards:
            return
        self._txn_shards.add(shard.shard_index)
        # Force the shard's nested transaction to carry the global id.
        assert self._current_txn_id is not None
        shard._next_txn_id = self._current_txn_id
        self._txn_stack.enter_context(shard.transaction())

    def _commit_all(self) -> None:
        stack = self._txn_stack
        records = self._pending_records
        sequence = self._pending_shards
        touched = sorted(self._txn_shards)
        self._txn_stack = None
        self._txn_shards = set()
        self._pending_records = []
        self._pending_shards = []
        self._current_txn_id = None
        if stack is not None:
            # Commits every joined shard (their WAL appends happen here).
            # A ProcessCrash mid-way leaves earlier shards durable and
            # later ones not: the per-shard durable-prefix model — each
            # partition recovers to its own last durable commit.
            stack.close()
        self._journal.extend(records)
        if records and self._durability is not None:
            self._durability.log_order(records[0].txn_id, sequence)
        obs.counter("store.txn", store=self.name, status="commit").inc()
        if self._txn_started_at is not None:
            obs.histogram("store.txn.latency", store=self.name).observe(
                perf_counter() - self._txn_started_at
            )
            self._txn_started_at = None
        obs.histogram(
            "store.txn.rows", obs.COUNT_BUCKETS, store=self.name
        ).observe(len(records))
        for shard in self.shards:
            obs.gauge(
                "store.shard.objects", store=self.name, shard=shard.shard_key
            ).set(shard.total_objects())
        for index in touched:
            obs.counter(
                "store.shard.txns",
                store=self.name,
                shard=self.shards[index].shard_key,
            ).inc()
        if self._commit_listeners and faults.should_inject(
            "store.commit_listener", store=self.name
        ):
            self._listener_backlog.append(records)
            return
        self.flush_commit_listeners()
        for listener in self._commit_listeners:
            listener(records)

    def _abort_all(self) -> None:
        stack = self._txn_stack
        self._txn_stack = None
        self._txn_shards = set()
        self._pending_records = []
        self._pending_shards = []
        self._current_txn_id = None
        self._txn_started_at = None
        if stack is not None:
            # Propagate the live exception into each shard's transaction
            # contextmanager so they roll back; a plain close() would
            # *commit* them.
            stack.__exit__(*sys.exc_info())
        obs.counter("store.txn", store=self.name, status="rollback").inc()

    # ------------------------------------------------------------------
    # Writes route to the home shard
    # ------------------------------------------------------------------

    def save(self, obj: M) -> M:
        if obj.id is None:
            if obj._store is not None:
                raise IntegrityError("object belongs to a different store")
            shard = self.shards[self._assign_shard(type(obj), obj.__dict__)]
            return shard.save(obj)
        return self._owner_of(obj).save(obj)

    def delete(self, obj: Model) -> None:
        if obj.id is None:
            raise ObjectDoesNotExist(f"{obj!r} is not stored here")
        self._owner_of(obj).delete(obj)

    def _owner_of(self, obj: Model) -> _ShardStore:
        owner = obj._store
        if isinstance(owner, _ShardStore) and owner._router is self:
            return owner
        if owner is None:
            raise ObjectDoesNotExist(f"{obj!r} is not stored here")
        raise IntegrityError("object belongs to a different store")

    # ------------------------------------------------------------------
    # Replication receive
    # ------------------------------------------------------------------

    def apply_record(self, record: ChangeRecord) -> None:
        if record.op is ChangeOp.CREATE:
            # Recompute placement from the record's values: the replica
            # has applied the same journal prefix, so the FK walk sees
            # the same ancestry the master's did.
            model = model_registry.get(record.model)
            with self._suspend_tracking():
                index = self.assignment.shard_index(
                    model, record.values, self._home_resolve, self._token_cache
                )
        else:
            found = self._home.get(record.obj_id)
            if found is None:
                obs.counter(
                    "store.replication.divergence",
                    store=self.name,
                    op=record.op.value,
                ).inc()
                raise TransactionError(
                    f"replication {record.op.value} for missing "
                    f"{record.model} id={record.obj_id}"
                )
            index = found
        self.shards[index].apply_record(record)
        self._journal.append(record)
        if self._durability is not None and not self._recovering:
            self._durability.log_order(record.txn_id, [index])
        if record.op is ChangeOp.CREATE:
            self._next_id = max(self._next_id, record.obj_id + 1)

    # ------------------------------------------------------------------
    # Query planner
    # ------------------------------------------------------------------

    def get(self, model: type[M], obj_id: int) -> M:
        found = self._home_resolve(model, obj_id)
        if found is None:
            raise ObjectDoesNotExist(f"no {model.__name__} with id {obj_id}")
        self._note_object_read(found)
        obs.counter("store.planner.single_shard", store=self.name).inc()
        return found

    def all(self, model: type[M]) -> list[M]:
        self._note_model_read(model)
        return self._fanout_scan(model, None)

    def filter(self, model: type[M], query: Query | None = None) -> list[M]:
        ensure_query(query)
        obs.counter("store.query", store=self.name, model=model.__name__).inc()
        with obs.timed("store.query.latency", store=self.name):
            if query is None:
                self._note_model_read(model)
                return self._fanout_scan(model, None)
            fast = self._indexed_filter(model, query)
            if fast is not None:
                self._count_planner_hit(fast)
                return fast
            narrowed = self._narrowed_filter(model, query)
            if narrowed is not None:
                return narrowed
            self._note_query_read(model, query)
            return self._fanout_scan(model, query)

    def count(self, model: type[M], query: Query | None = None) -> int:
        ensure_query(query)
        obs.counter("store.query", store=self.name, model=model.__name__).inc()
        if query is None:
            self._note_model_read(model)
            return sum(
                len(shard._tables.get(concrete.__name__, ()))
                for concrete in model_registry.all()
                if issubclass(concrete, model)
                for shard in self.shards
            )
        fast = self._indexed_filter(model, query)
        if fast is not None:
            self._count_planner_hit(fast)
            return len(fast)
        narrowed = self._narrowed_filter(model, query)
        if narrowed is not None:
            return len(narrowed)
        self._note_query_read(model, query)
        return len(self._fanout_scan(model, query))

    def _count_planner_hit(self, rows: list[Model]) -> None:
        """Count an index-served query whose answer lives on one shard."""
        if len(self.shards) == 1:
            obs.counter("store.planner.single_shard", store=self.name).inc()
            return
        homes = {
            self._home.get(obj.id) for obj in rows if obj.id is not None
        }
        if len(homes) <= 1:
            obs.counter("store.planner.single_shard", store=self.name).inc()

    def _narrowed_filter(self, model: type[M], query: Query) -> list[M] | None:
        """Serve an ``And`` query from one equality child's index.

        The candidates come from the index (suspended, so the extra
        probe adds nothing to read-sets) and the full query filters
        them; the recorded dependency is the same ``_note_query_read``
        a single store records, keeping incremental regeneration
        byte-compatible.
        """
        for child in indexable_equalities(query):
            if child is query:
                return None  # bare Expr: _indexed_filter already tried it
            with self._suspend_tracking():
                candidates = self._indexed_filter(model, child)
            if candidates is None:
                continue
            self._note_query_read(model, query)
            with self._suspend_tracking():
                rows = [obj for obj in candidates if query.matches(obj)]
            self._count_planner_hit(rows)
            return rows
        return None

    def _model_row_total(self, model: type[Model]) -> int:
        total = 0
        for concrete in model_registry.all():
            if issubclass(concrete, model):
                for shard in self.shards:
                    total += len(shard._tables.get(concrete.__name__, ()))
        return total

    def _fanout_scan(self, model: type[M], query: Query | None) -> list[M]:
        """Scan every shard and merge in shard-key order, then by id.

        Fans out through :mod:`repro.parallel` for large tables (outside
        any worker task — config renders already run in the pool), and
        runs serially otherwise; either way the merged result is sorted
        by id, so the answer is identical at any worker count.
        """
        shards = self.shards
        if len(shards) > 1:
            for shard in shards:
                obs.counter(
                    "store.planner.fanout", store=self.name, shard=shard.shard_key
                ).inc()

        def scan(shard: _ShardStore) -> list[M]:
            return [
                obj
                for obj in ObjectStore._iter_rows(shard, model)
                if query is None or query.matches(obj)
            ]

        # Suspended either way: the per-row ``matches`` FK hops are
        # membership tests, and the pooled path must record exactly what
        # the serial path does (nothing) at every worker count.
        with self._suspend_tracking():
            if (
                len(shards) > 1
                and parallel.current_task() is None
                and self._model_row_total(model) >= FANOUT_MIN_ROWS
            ):
                results = parallel.run_tasks(
                    [
                        (shard.shard_key, (lambda s=shard: scan(s)))
                        for shard in shards
                    ],
                    section="store.scan",
                )
                parallel.raise_first_error(results)
                rows = [obj for result in results for obj in result.value]
            else:
                rows = [obj for shard in shards for obj in scan(shard)]
        return sorted(rows, key=lambda o: o.id or 0)

    # ------------------------------------------------------------------
    # Durability: a manifest plus one WAL root per shard
    # ------------------------------------------------------------------

    def attach_durability(
        self,
        root: Any,
        *,
        snapshot_every: int | None = None,
        fsync: bool = False,
    ) -> ShardedDurability:
        if self._durability is not None:
            raise TransactionError(f"store {self.name!r} already has durability")
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        manifest_path = root / MANIFEST_NAME
        if manifest_path.is_file():
            manifest = json.loads(manifest_path.read_text())
            if int(manifest.get("shard_count", -1)) != len(self.shards):
                raise DurabilityError(
                    f"{manifest_path} was written by a "
                    f"{manifest.get('shard_count')}-shard store; this store "
                    f"has {len(self.shards)}"
                )
        else:
            payload = {
                "kind": "fbnet-shards",
                "version": 1,
                "store": self.name,
                "shard_count": len(self.shards),
                "shards": [shard.shard_key for shard in self.shards],
            }
            tmp = manifest_path.with_suffix(".tmp")
            tmp.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
            tmp.replace(manifest_path)
        engines = [
            shard.attach_durability(
                root / f"shard-{shard.shard_index:02d}",
                snapshot_every=snapshot_every,
                fsync=fsync,
            )
            for shard in self.shards
        ]
        self._durability = ShardedDurability(
            self, engines, order_path=root / ORDER_LOG_NAME, fsync=fsync
        )
        return self._durability

    def detach_durability(self) -> None:
        self._durability = None
        for shard in self.shards:
            shard.detach_durability()

    @classmethod
    def recover(
        cls,
        root: Any,
        *,
        name: str | None = None,
        attach: bool = True,
        snapshot_every: int | None = None,
        fsync: bool = False,
    ) -> ShardedObjectStore:
        """Rebuild a sharded store: every partition recovers independently.

        Each shard replays its own snapshot + WAL tail (a torn tail in
        one shard truncates only that shard's last commit).  The global
        journal is re-merged from the shard journals by transaction id,
        with each transaction's cross-shard interleave reconstructed
        from the order log; a transaction with no intact order entry
        (torn order tail, partially durable commit) merges in shard
        order instead — same state, approximate provenance.
        """
        from repro.fbnet.durability import recover_store

        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.is_file():
            raise DurabilityError(f"{root} is not a sharded durability root")
        manifest = json.loads(manifest_path.read_text())
        count = int(manifest["shard_count"])
        store = cls(shards=count, name=name or manifest.get("store") or "fbnet")
        engines = []
        for shard in store.shards:
            recover_store(
                root / f"shard-{shard.shard_index:02d}",
                name=shard.name,
                attach=attach,
                snapshot_every=snapshot_every,
                fsync=fsync,
                into=shard,
            )
            if shard._durability is not None:
                engines.append(shard._durability)
        store._journal = _merge_journals(
            [shard._journal for shard in store.shards],
            _read_order_log(root / ORDER_LOG_NAME),
        )
        store._next_id = max(
            [store._next_id] + [shard._next_id for shard in store.shards]
        )
        store._next_txn_id = max(
            [store._next_txn_id] + [shard._next_txn_id for shard in store.shards]
        )
        if attach and engines:
            store._durability = ShardedDurability(
                store, engines, order_path=root / ORDER_LOG_NAME, fsync=fsync
            )
        return store

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def table_sizes(self) -> dict[str, int]:
        sizes: dict[str, int] = {}
        for shard in self.shards:
            for model_name, rows in shard._tables.items():
                if rows:
                    sizes[model_name] = sizes.get(model_name, 0) + len(rows)
        return sizes

    def total_objects(self) -> int:
        return sum(shard.total_objects() for shard in self.shards)

    def shard_sizes(self) -> dict[str, int]:
        """Object count per shard key — the balance view."""
        return {shard.shard_key: shard.total_objects() for shard in self.shards}

    def _digest_tables(self) -> dict[str, dict[int, Model]]:
        merged: dict[str, dict[int, Model]] = {}
        for shard in self.shards:
            for model_name, rows in shard._tables.items():
                if rows:
                    merged.setdefault(model_name, {}).update(rows)
        return merged


def _read_order_log(path: Path) -> dict[int, list[int]]:
    """Transaction id -> shard index per record, in global write order.

    A torn final line (crash mid-append) ends the read: that commit —
    and only that commit — falls back to shard-order merging.
    """
    order: dict[int, list[int]] = {}
    if not path.is_file():
        return order
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            entry = json.loads(line)
            order.setdefault(int(entry["txn"]), []).extend(
                int(index) for index in entry["shards"]
            )
        except (ValueError, KeyError, TypeError):
            break
    return order


def _merge_journals(
    journals: list[list[ChangeRecord]],
    order: dict[int, list[int]] | None = None,
) -> list[ChangeRecord]:
    """Re-merge per-shard journals into the global write order.

    Transactions sort by id.  Within one, an order-log entry whose shard
    multiset matches what the WALs actually delivered reconstructs the
    original cross-shard interleave exactly; otherwise (no entry, torn
    entry, or a partially durable commit) the records merge in shard
    order — identical state, approximate provenance.
    """
    per_txn: dict[int, dict[int, list[ChangeRecord]]] = {}
    for shard_index, journal in enumerate(journals):
        for record in journal:
            per_txn.setdefault(record.txn_id, {}).setdefault(
                shard_index, []
            ).append(record)
    merged: list[ChangeRecord] = []
    for txn_id in sorted(per_txn):
        shards = per_txn[txn_id]
        sequence = (order or {}).get(txn_id)
        delivered = Counter(
            {index: len(records) for index, records in shards.items()}
        )
        if sequence is not None and Counter(sequence) == delivered:
            cursors = dict.fromkeys(shards, 0)
            for index in sequence:
                merged.append(shards[index][cursors[index]])
                cursors[index] += 1
        else:
            for index in sorted(shards):
                merged.extend(shards[index])
    return merged
