"""Section 4.3.3 — FBNet replication, failover, and service routing.

The paper claims: reads are served region-locally (lower latency), writes
forward to the master region, replication lag is typically under one
second, a lagging or failed slave is disabled with reads redirecting to
the master, and a failed master is replaced by promoting the nearest
slave.  This bench exercises the replicated store under load and measures
convergence and availability through the failure sequence.
"""

import pytest
from conftest import publish_report

from repro.common.util import format_table
from repro.fbnet.query import Expr, Op
from repro.fbnet.replication import ReplicatedFBNet
from repro.simulation.clock import EventScheduler

REGIONS = ["na-east", "na-west", "eu-central", "ap-south"]
WRITES = 300


def replication_drill():
    scheduler = EventScheduler()
    cluster = ReplicatedFBNet(
        REGIONS, "na-east", scheduler, replication_lag=0.5,
        read_replicas_per_region=2,
    )
    outcomes = {}

    # Phase 1: steady-state — remote clients write through the master.
    client = cluster.client("ap-south")
    for index in range(WRITES):
        client.create_objects([("Region", {"name": f"obj-{index:04d}"})])
    outcomes["lag_before_pump"] = cluster.measured_lag("ap-south")
    outcomes["local_visible_before"] = client.count("Region")
    outcomes["raw_visible_before"] = client.count(
        "Region", consistency="read-after-write"
    )
    scheduler.run_for(1.0)
    outcomes["local_visible_after"] = client.count("Region")

    # Phase 2: a replica database fails; its region keeps reading.
    cluster.disable_database("ap-south")
    client.create_objects([("Region", {"name": "during-outage"})])
    outcomes["reads_during_replica_outage"] = client.count("Region")
    cluster.recover_database("ap-south")
    outcomes["reads_after_recovery"] = client.count("Region")

    # Phase 3: every service replica in a region crashes; reads redirect
    # to the nearest live region (after lag, so the neighbor is caught up).
    scheduler.run_for(1.0)
    for replica in cluster.regions["ap-south"].read_replicas:
        replica.crash()
    outcomes["reads_via_neighbor"] = client.count("Region")
    for replica in cluster.regions["ap-south"].read_replicas:
        replica.recover()

    # Phase 4: master loss and promotion of the nearest healthy slave.
    scheduler.run_for(1.0)
    cluster.fail_master()
    new_master = cluster.promote_nearest()
    outcomes["new_master"] = new_master
    client.create_objects([("Region", {"name": "after-promotion"})])
    scheduler.run_for(1.0)
    outcomes["final_count_everywhere"] = [
        cluster.regions[name].store.count(
            __import__("repro.fbnet.models", fromlist=["Region"]).Region
        )
        for name in REGIONS
        if cluster.regions[name].db_healthy
    ]
    return outcomes


@pytest.fixture(scope="module")
def drill():
    return replication_drill()


def test_sec43_replication_and_failover(benchmark, drill):
    outcomes = benchmark.pedantic(lambda: drill, rounds=1, iterations=1)

    rows = [
        ("writes issued", WRITES + 2),
        ("replica lag right after write burst", f"{outcomes['lag_before_pump']:.2f}s"),
        ("local reads before lag elapsed", outcomes["local_visible_before"]),
        ("read-after-write reads (master region)", outcomes["raw_visible_before"]),
        ("local reads after <1s lag", outcomes["local_visible_after"]),
        ("reads during replica DB outage", outcomes["reads_during_replica_outage"]),
        ("reads after replica recovery", outcomes["reads_after_recovery"]),
        ("reads with all local service replicas down", outcomes["reads_via_neighbor"]),
        ("promoted master", outcomes["new_master"]),
        ("healthy-region row counts at end", outcomes["final_count_everywhere"]),
    ]
    report = [
        "Section 4.3.3: replication, lag, and failover drill",
        "",
        format_table(("observation", "value"), rows),
        "",
        "paper: async replication with typical lag under one second;",
        "reads local, writes at master; lagging/failed slaves disabled",
        "with reads redirected; nearest slave promoted on master failure.",
    ]
    publish_report("sec43_replication", "\n".join(report))

    # Typical lag under one second: after 1s everything converged.
    assert outcomes["lag_before_pump"] <= 1.0
    assert outcomes["local_visible_after"] == WRITES
    # Read-after-write saw everything immediately.
    assert outcomes["raw_visible_before"] == WRITES
    # Availability held through replica DB loss, replica process loss,
    # and master promotion.
    assert outcomes["reads_during_replica_outage"] == WRITES + 1
    assert outcomes["reads_via_neighbor"] >= WRITES + 1
    assert outcomes["new_master"] == "na-west"
    final = outcomes["final_count_everywhere"]
    assert len(set(final)) == 1  # all healthy regions converged
