"""Figure 13 — the number of related models associated with each FBNet model.

Paper: "around 60% of models have more than 5 related models" over a
store of 250+ models.  Our reproduction ships the core ~43 models, so the
graph is sparser; the bench reports the measured distribution next to the
paper's claim and asserts the qualitative shape (dependency modeling is
pervasive: most Desired models relate to multiple others, device models
are the hubs).
"""

from conftest import publish_report

import repro.fbnet.models  # noqa: F401  (registers every model)
from repro.common.util import format_table
from repro.fbnet.base import ModelGroup, model_registry


def related_counts():
    return {
        model.__name__: model_registry.related_model_count(model)
        for model in model_registry.all()
    }


def test_fig13_related_models_per_model(benchmark):
    counts = benchmark(related_counts)

    values = sorted(counts.values())
    total = len(values)

    def share_above(threshold: int) -> float:
        return 100.0 * sum(1 for v in values if v > threshold) / total

    desired = {
        name: count
        for name, count in counts.items()
        if model_registry.get(name)._meta.group is ModelGroup.DESIRED
    }
    desired_values = sorted(desired.values())

    def desired_share_at_least(threshold: int) -> float:
        return 100.0 * sum(1 for v in desired_values if v >= threshold) / len(
            desired_values
        )

    cdf_rows = []
    for threshold in (0, 1, 2, 3, 5, 8):
        cdf_rows.append(
            (f">{threshold}", f"{share_above(threshold):.1f}%")
        )
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:8]
    report = [
        "Figure 13: related models associated with each FBNet model",
        "",
        f"models in registry    : {len(counts)}   (paper: 250+)",
        "share of models with related-model count above threshold:",
        format_table(("threshold", "share of models"), cdf_rows),
        "",
        "most-connected models:",
        format_table(("model", "related models"), top),
        "",
        "paper: ~60% of models have >5 related models.  Our registry is",
        "a ~6x smaller core subset, and Derived models are deliberately",
        "name-joined (no FKs), so the measured graph is sparser; the",
        "qualitative claim — Desired models are densely interrelated,",
        "with device models as hubs — holds below.",
    ]
    publish_report("fig13_model_relations", "\n".join(report))

    # Shape assertions: dependency modeling is pervasive on the Desired side.
    assert desired_share_at_least(2) > 60.0
    assert max(values) >= 8  # device models are hubs
    # Derived models are intentionally relation-free (joined by name).
    derived = [
        counts[m.__name__]
        for m in model_registry.by_group(ModelGroup.DERIVED)
    ]
    assert all(v == 0 for v in derived)
