"""Ablation — what the store's query indexes buy (design choice).

DESIGN.md calls out two store design choices: the reverse/unique indexes
that serve FK- and unique-field equality queries in O(1), and journal-
undo transactions.  Template materialization is the workload the paper
cares about ("tens of thousands of FBNet objects within minutes"); this
ablation builds the same cluster with the indexed fast path enabled and
disabled, quantifying the speedup the indexes provide.
"""

import time

import pytest
from conftest import publish_report

from repro import ObjectStore, seed_environment
from repro.common.util import format_table
from repro.design.cluster import build_cluster
from repro.fbnet.models import ClusterGeneration


def build(clusters: int, disable_fast_path: bool) -> float:
    store = ObjectStore()
    if disable_fast_path:
        store._indexed_filter = lambda model, query: None  # force scans
    env = seed_environment(store, datacenter_count=max(1, clusters))
    started = time.perf_counter()
    for index in range(clusters):
        build_cluster(
            store,
            f"dc01.abl{index}",
            env.datacenters["dc01"],
            ClusterGeneration.DC_GEN2,
        )
    return time.perf_counter() - started


def test_ablation_indexed_queries(benchmark):
    indexed = benchmark.pedantic(
        lambda: build(3, disable_fast_path=False), rounds=1, iterations=1
    )
    scanning = build(3, disable_fast_path=True)

    speedup = scanning / indexed if indexed else float("inf")
    rows = [
        ("indexed (shipping default)", f"{indexed:.2f}s"),
        ("full-scan filters (ablated)", f"{scanning:.2f}s"),
        ("speedup", f"{speedup:.1f}x"),
    ]
    report = [
        "Ablation: reverse/unique-index query fast path",
        "(workload: materialize 3 DC Gen2 clusters, ~1,000 objects each)",
        "",
        format_table(("configuration", "wall time"), rows),
        "",
        "The indexes keep bulk materialization near-linear; without them",
        "every FK/unique equality filter rescans the growing tables.",
    ]
    publish_report("ablation_store_indexes", "\n".join(report))

    # The fast path must help, and both configurations must agree on the
    # result (same object counts).
    assert speedup > 1.5
