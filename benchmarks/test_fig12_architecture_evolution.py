"""Figure 12 — the evolution of cluster architectures over two years.

Paper: Gen1 POP clusters grew rapidly, then were merged into bigger Gen2
clusters via *in-place* upgrades (POPs lack space/power for side-by-side);
DC clusters ran three coexisting generations, with shifts happening by
building new clusters and decommissioning old ones, and Gen3 (v6-only)
arriving after private IPv4 exhaustion.

The 104-week architecture life cycle runs through the real cluster
catalog and decommission/upgrade operations; we track the per-generation
cluster counts week by week.
"""

import pytest
from conftest import publish_report

from repro import ObjectStore, seed_environment
from repro.common.util import format_table
from repro.fbnet.models import Cluster, ClusterGeneration
from repro.simulation.executor import WorkloadExecutor
from repro.simulation.workloads import ArchitectureEvolution


def run_evolution():
    store = ObjectStore()
    env = seed_environment(
        store, pop_count=8, datacenter_count=4, backbone_site_count=2
    )
    executor = WorkloadExecutor(store, env, seed=6)
    workload = ArchitectureEvolution(seed=4, weeks=104)
    ops = workload.schedule()

    # Start the period with an installed base of Gen1 clusters, as the
    # paper's Figure 12 does.
    from repro.simulation.workloads import DesignChangeOp

    seed_ops = [
        DesignChangeOp(0, "pop", "build_cluster",
                       {"generation": ClusterGeneration.POP_GEN1})
        for _ in range(3)
    ] + [
        DesignChangeOp(0, "datacenter", "build_cluster",
                       {"generation": ClusterGeneration.DC_GEN1})
        for _ in range(4)
    ]

    series: dict[ClusterGeneration, list[int]] = {
        generation: [] for generation in ClusterGeneration
    }

    def snapshot():
        counts = {generation: 0 for generation in ClusterGeneration}
        for cluster in store.all(Cluster):
            counts[cluster.generation] += 1
        for generation, count in counts.items():
            series[generation].append(count)

    by_week: dict[int, list] = {}
    for op in seed_ops + ops:
        by_week.setdefault(op.week, []).append(op)
    for week in range(104):
        for op in by_week.get(week, []):
            executor.execute(op)
        snapshot()
    return series, executor


@pytest.fixture(scope="module")
def evolution():
    return run_evolution()


def test_fig12_cluster_architecture_evolution(benchmark, evolution):
    series, executor = evolution
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def at(generation, week):
        return series[generation][week]

    quarters = [12, 25, 51, 77, 103]
    rows = []
    for generation in ClusterGeneration:
        rows.append(
            (generation.value, *[at(generation, week) for week in quarters])
        )
    report = [
        "Figure 12: cluster architecture evolution (104 weeks)",
        "",
        format_table(
            ("generation", *[f"wk{w + 1}" for w in quarters]), rows
        ),
        "",
        "paper: Gen1 POPs grow then merge into Gen2 in place; DC Gen1/2/3",
        "coexist, Gen1 declining by decommission, Gen3 (v6-only) arriving",
        "in the second year.",
        f"design changes executed: {len(executor.executed)}",
    ]
    publish_report("fig12_architecture_evolution", "\n".join(report))

    pop1, pop2 = series[ClusterGeneration.POP_GEN1], series[ClusterGeneration.POP_GEN2]
    dc1 = series[ClusterGeneration.DC_GEN1]
    dc2 = series[ClusterGeneration.DC_GEN2]
    dc3 = series[ClusterGeneration.DC_GEN3]

    # POP: Gen1 rises early then is merged away; Gen2 replaces it.
    assert max(pop1[:26]) >= 3
    assert pop1[-1] == 0
    assert pop2[-1] > 0
    # The merges were in-place upgrades: total POP clusters never exceed
    # sites' worth of growth (no side-by-side doubling).
    upgrades = [c for c in executor.executed if c.kind == "upgrade_pop_gen2"]
    assert upgrades
    # DC: three generations coexist at some point...
    assert any(
        dc1[w] > 0 and dc2[w] > 0 and dc3[w] > 0 for w in range(104)
    )
    # ...Gen1 declines via decommission, Gen3 only appears in year two.
    assert dc1[-1] < max(dc1)
    assert all(count == 0 for count in dc3[: int(104 * 0.4)])
    assert dc3[-1] > 0
