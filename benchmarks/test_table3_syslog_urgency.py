"""Table 3 — syslog messages by urgency over 24 hours.

Paper (49.34M messages/day through 719 regex rules): IGNORED 96.27%,
WARNING 3.65%, MINOR 0.06%, NOTICE 0.01%, MAJOR <0.01%, CRITICAL 2
events; rule counts 13/214/310/103/79.  We run a scaled 24-hour event mix
through a classifier with the paper's rule-table sizes and report the
same columns.
"""

from conftest import publish_report

from repro.common.util import format_table
from repro.fbnet.models import EventSeverity
from repro.monitoring.classifier import Classifier
from repro.simulation.workloads import PAPER_RULE_COUNTS, SyslogWorkload

TOTAL_EVENTS = 50_000  # paper's 49.34M scaled by ~1000x

PAPER_SHARES = {
    EventSeverity.CRITICAL: "<0.01%",
    EventSeverity.MAJOR: "<0.01%",
    EventSeverity.MINOR: "0.06%",
    EventSeverity.WARNING: "3.65%",
    EventSeverity.NOTICE: "0.01%",
    EventSeverity.IGNORED: "96.27%",
}


def classify_day():
    workload = SyslogWorkload(
        seed=11,
        total_events=TOTAL_EVENTS,
        device_names=tuple(f"pop01.c01.psw{i}" for i in range(1, 5)),
    )
    classifier = Classifier(workload.rule_table())
    for message in workload.messages():
        classifier(message)
    return classifier


def test_table3_syslog_by_urgency(benchmark):
    classifier = benchmark.pedantic(classify_day, rounds=1, iterations=1)
    table = classifier.severity_table()

    rows = []
    for severity in (
        EventSeverity.CRITICAL, EventSeverity.MAJOR, EventSeverity.MINOR,
        EventSeverity.WARNING, EventSeverity.NOTICE, EventSeverity.IGNORED,
    ):
        count, pct = table[severity]
        rules = (
            classifier.rule_count(severity)
            if severity is not EventSeverity.IGNORED
            else 0
        )
        rows.append(
            (severity.name, count, f"{pct:.2f}%", rules,
             PAPER_SHARES[severity])
        )
    report = [
        f"Table 3: syslog messages by urgency ({TOTAL_EVENTS} events, 24h)",
        "",
        format_table(
            ("urgency", "# events", "share", "# rules", "paper share"), rows
        ),
        "",
        "paper rule counts: CRITICAL 13, MAJOR 214, MINOR 310, WARNING 103,",
        "NOTICE 79; >95% of messages are IGNORED noise.",
    ]
    publish_report("table3_syslog_urgency", "\n".join(report))

    # Rule-table sizes match the paper exactly.
    for severity, expected in PAPER_RULE_COUNTS.items():
        assert classifier.rule_count(severity) == expected
    # Event-mix shape: noise dominates; warnings are the valuable bulk.
    _, ignored_pct = table[EventSeverity.IGNORED]
    _, warning_pct = table[EventSeverity.WARNING]
    _, minor_pct = table[EventSeverity.MINOR]
    assert ignored_pct > 95.0
    assert 2.0 < warning_pct < 6.0
    assert minor_pct < 0.5
    assert table[EventSeverity.CRITICAL][0] <= 5  # a handful at most
    # Every message was accounted for.
    assert sum(count for count, _pct in table.values()) == TOTAL_EVENTS
