"""Table 2 — monitoring events in a 24-hour period, by mechanism.

Paper: SNMP 50.94%, Syslog 20.73%, Thrift 12.21%, CLI 11.25%, RPC/XML
4.87% of 238M events/day.  The mechanism mix is a *consequence* of the
job schedule and the per-vendor capability gaps (XML/RPC only on vendor1
platforms, Thrift only on vendor2, LACP member state only via CLI).  We
run a 24-hour simulated schedule shaped like the paper's over a mixed-
vendor fleet and measure the actual per-engine event counts delivered by
the pipeline.
"""

import pytest
from conftest import publish_report

from repro import Robotron, seed_environment
from repro.common.util import format_table
from repro.fbnet.models import ClusterGeneration
from repro.monitoring.jobs import JobSpec
from repro.simulation.clock import DAY
from repro.simulation.workloads import SyslogWorkload

PAPER_SHARES = {
    "snmp": 50.94,
    "syslog": 20.73,
    "thrift": 12.21,
    "cli": 11.25,
    "xmlrpc": 4.87,
}

#: A 24-hour schedule shaped like the paper's mechanism mix: SNMP is the
#: minute-level workhorse; CLI fills vendor gaps at a coarser period;
#: the structured APIs poll what they can on the platforms that have them.
JOB_SPECS = (
    JobSpec("snmp-interfaces", "snmp", "interfaces", 60.0, ("tsdb",)),
    JobSpec("snmp-system", "snmp", "system", 60.0, ("tsdb",)),
    JobSpec("snmp-counters", "snmp", "interfaces", 65.0),
    JobSpec("cli-lacp", "cli", "lacp-members", 272.0),
    JobSpec("cli-bgp", "cli", "bgp", 272.0),
    JobSpec("cli-config", "cli", "running-config", 293.0),
    JobSpec(
        "xmlrpc-interfaces", "xmlrpc", "interfaces", 92.0,
        device_filter=lambda d: d.vendor == "vendor1",
    ),
    JobSpec(
        "xmlrpc-bgp", "xmlrpc", "bgp", 92.0,
        device_filter=lambda d: d.vendor == "vendor1",
    ),
    JobSpec(
        "xmlrpc-config", "xmlrpc", "config", 92.0,
        device_filter=lambda d: d.vendor == "vendor1",
    ),
    JobSpec(
        "thrift-interfaces", "thrift", "interfaces", 147.0,
        device_filter=lambda d: d.vendor == "vendor2",
    ),
    JobSpec(
        "thrift-bgp", "thrift", "bgp", 147.0,
        device_filter=lambda d: d.vendor == "vendor2",
    ),
)


def run_24h():
    robotron = Robotron()
    env = seed_environment(robotron.store)
    cluster = robotron.build_cluster(
        "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
    )
    robotron.boot_fleet()
    assert robotron.provision_cluster(cluster).ok
    robotron.attach_monitoring(job_specs=JOB_SPECS)

    # Operational syslog (a scaled day of it), emitted hourly in batches
    # through the devices onto the anycast bus.
    devices = [d for d in robotron.fleet.devices.values()]
    messages = SyslogWorkload(
        seed=13, total_events=24_000,
        device_names=tuple(d.name for d in devices),
    ).messages()
    per_hour = len(messages) // 24
    for hour in range(24):
        batch = messages[hour * per_hour : (hour + 1) * per_hour]

        def emit(batch=batch):
            for message in batch:
                robotron.fleet.get(message.device).emit_syslog(
                    message.tag, message.message
                )

        robotron.scheduler.call_at(hour * 3600.0 + 1.0, emit)

    robotron.run(DAY)
    counts = dict(robotron.jobs.event_counts())
    counts["syslog"] = robotron.collector.received
    return counts


@pytest.fixture(scope="module")
def day_counts():
    return run_24h()


def test_table2_monitoring_event_mix(benchmark, day_counts):
    counts = day_counts
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    total = sum(counts.values())
    rows = []
    for engine in ("snmp", "cli", "xmlrpc", "thrift", "syslog"):
        share = 100.0 * counts.get(engine, 0) / total
        rows.append(
            (engine, counts.get(engine, 0), f"{share:.2f}%",
             f"{PAPER_SHARES[engine]:.2f}%")
        )
    report = [
        "Table 2: monitoring events in a 24-hour period",
        "",
        format_table(("mechanism", "# events", "share", "paper share"), rows),
        "",
        f"total events: {total}   (paper: 238.03M over ~30k devices;",
        "ours is a 14-device fleet with the schedule scaled to match the",
        "mechanism mix, which is what the table characterizes).",
    ]
    publish_report("table2_monitoring_events", "\n".join(report))

    share = {k: 100.0 * v / total for k, v in counts.items()}
    # Ordering matches the paper: SNMP > syslog > thrift > cli > xmlrpc.
    assert share["snmp"] > share["syslog"] > share["thrift"]
    assert share["thrift"] >= share["cli"] > share["xmlrpc"]
    # And the magnitudes are close (within a few points of the paper).
    for engine, paper_pct in PAPER_SHARES.items():
        assert abs(share[engine] - paper_pct) < 6.0, (engine, share[engine])
