"""§5.3/§8 — incremental config generation vs. regenerating the world.

The paper's config generation runs at fleet scale (tens of thousands of
devices); the war story in section 8 is what happens when stale configs
meet full regeneration costs.  This benchmark builds a multi-hundred-
device design, mutates a single physical interface, and compares a full
regeneration against ``regenerate_dirty`` walking the journal — the
incremental pass must find exactly the affected device, produce
byte-identical output, and be at least an order of magnitude faster.
"""

import json
import time
from pathlib import Path

from check_regression import calibration_seconds
from conftest import RESULTS_DIR, publish_report

from repro import ObjectStore, seed_environment
from repro.common.util import format_table
from repro.configgen.generator import ConfigGenerator
from repro.obs import flight
from repro.design.cluster import build_cluster
from repro.fbnet.models import (
    AggregatedInterface,
    ClusterGeneration,
    Device,
    PhysicalInterface,
)

CLUSTERS = 8  # DC Gen3 clusters of 28 devices each: 224 devices total


def build_design():
    store = ObjectStore()
    env = seed_environment(store, datacenter_count=CLUSTERS)
    for index in range(1, CLUSTERS + 1):
        dc = f"dc{index:02d}"
        build_cluster(store, f"{dc}.c01", env.datacenters[dc], ClusterGeneration.DC_GEN3)
    return store


def measure_flight_overhead(generator, store, pif, rounds: int = 5) -> float:
    """Hot-path cost of the flight recorder: recorder on vs off.

    Each round runs the steady-state unit of work (one mutation, one
    ``regenerate_dirty`` walking the journal) and takes the best of
    ``rounds`` per mode — min-of-rounds suppresses scheduler noise,
    which would otherwise dwarf the recorder's per-event cost.
    """
    def one_round(tag: str) -> float:
        store.update(pif, description=f"flight-bench {tag}")
        started = time.perf_counter()
        generator.regenerate_dirty()
        return time.perf_counter() - started

    recorder = flight.recorder()
    best: dict[bool, float] = {}
    try:
        for enabled in (True, False):
            recorder.enabled = enabled
            best[enabled] = min(
                one_round(f"{enabled}-{index}") for index in range(rounds)
            )
    finally:
        recorder.enabled = True
    return best[True] / best[False]


def test_sec54_incremental_vs_full(benchmark):
    store = build_design()
    devices = store.all(Device)
    generator = ConfigGenerator(store)

    started = time.perf_counter()
    generator.generate_devices(devices)
    initial_seconds = time.perf_counter() - started

    # One engineer relabels one physical interface somewhere in the fleet.
    pif = store.all(PhysicalInterface)[0]
    owner = store.get(AggregatedInterface, pif.agg_interface_id).related("device")
    store.update(pif, description="recabled during maintenance")

    # The naive response: regenerate the world.
    started = time.perf_counter()
    full = ConfigGenerator(store, generator.configerator)
    full.generate_devices(devices)
    full_seconds = time.perf_counter() - started

    # The change-propagation response: walk the journal, regenerate dirty.
    # Timed directly (not via benchmark.stats, which --benchmark-disable
    # nulls out); the benchmark fixture still records the run when enabled.
    report = None
    incremental_seconds = None

    def incremental():
        nonlocal report, incremental_seconds
        started = time.perf_counter()
        report = generator.regenerate_dirty()
        incremental_seconds = time.perf_counter() - started

    benchmark.pedantic(incremental, rounds=1, iterations=1)

    speedup = full_seconds / incremental_seconds

    # Correctness before speed: exactly the affected device, and the
    # incremental golden set is byte-identical to the full regeneration.
    assert set(report.regenerated) == {owner.name}
    assert {n: c.text for n, c in generator.golden.items()} == {
        n: c.text for n, c in full.golden.items()
    }
    assert speedup >= 10, (
        f"incremental pass only {speedup:.1f}x faster than full regeneration"
    )

    # Provenance must ride the hot path for free (gated at <5% by
    # check_regression.py); measured after the correctness assertions
    # because each round mutates the fleet again.
    flight_overhead_ratio = measure_flight_overhead(generator, store, pif)

    rows = [
        ("devices in design", str(len(devices))),
        ("initial full generation", f"{initial_seconds:.3f}s"),
        ("full regeneration after 1 change", f"{full_seconds:.3f}s"),
        ("incremental (regenerate_dirty)", f"{incremental_seconds * 1000:.1f}ms"),
        ("devices regenerated", f"{len(report.regenerated)} ({owner.name})"),
        ("journal records scanned", str(report.records_scanned)),
        ("speedup", f"{speedup:.0f}x"),
        ("flight recorder overhead", f"{(flight_overhead_ratio - 1) * 100:+.1f}%"),
    ]
    text = [
        "Section 5.3/8: incremental config generation",
        f"(workload: {CLUSTERS} DC Gen3 clusters, single-interface change)",
        "",
        format_table(("measure", "value"), rows),
        "",
        "Read-set dirty mapping touches one device out of the fleet and",
        "still produces byte-identical output to full regeneration.",
    ]
    publish_report("sec54_incremental_configgen", "\n".join(text))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "sec54_incremental_configgen.json").write_text(
        json.dumps(
            {
                "devices": len(devices),
                "clusters": CLUSTERS,
                "initial_full_seconds": initial_seconds,
                "full_regeneration_seconds": full_seconds,
                "incremental_seconds": incremental_seconds,
                "devices_regenerated": sorted(report.regenerated),
                "records_scanned": report.records_scanned,
                "speedup": speedup,
                "flight_overhead_ratio": flight_overhead_ratio,
                "calibration_seconds": calibration_seconds(),
            },
            indent=2,
        )
        + "\n"
    )
