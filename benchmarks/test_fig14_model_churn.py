"""Figure 14 — Desired model lines changed per week over three years.

Paper: "more than 50 lines changed, on average, daily.  Occasionally,
large refactoring efforts can touch hundreds of lines of code", driven by
new component types, new attributes, and logic changes (section 6.1).
The model-evolution workload replays those processes; the bench verifies
the series' shape.
"""

from conftest import publish_report

from repro.common.util import format_table, mean, percentile
from repro.simulation.workloads import ModelChurnWorkload


def test_fig14_weekly_model_churn(benchmark):
    workload = ModelChurnWorkload(seed=7, weeks=156)
    weekly = benchmark(workload.weekly_lines)

    daily_avg = mean(weekly) / 7.0
    ordered = sorted(weekly)
    median_week = percentile(ordered, 50)
    # A "refactor spike" week moves far beyond the steady churn.
    spikes = [w for w in weekly if w >= 1.75 * median_week]

    quarters = []
    for quarter in range(0, 156, 13):
        chunk = weekly[quarter : quarter + 13]
        quarters.append(
            (f"weeks {quarter + 1}-{quarter + len(chunk)}",
             f"{mean(chunk):.0f}", max(chunk))
        )
    report = [
        "Figure 14: Desired model lines changed per week (156 weeks)",
        "",
        format_table(("period", "mean lines/week", "max lines/week"), quarters),
        "",
        f"average lines changed per day : {daily_avg:.1f}   (paper: >50)",
        f"median week                   : {median_week:.0f} lines",
        f"p95 week                      : {percentile(ordered, 95):.0f} lines",
        f"refactor spikes (>=1.75x median): {len(spikes)} weeks",
        "",
        "paper: models never stabilize — >50 lines/day on average over",
        "3 years, with occasional hundreds-of-lines refactors.",
    ]
    publish_report("fig14_model_churn", "\n".join(report))

    assert daily_avg > 50
    assert spikes  # refactors occur
    assert min(weekly) >= 0
    # The churn is sustained, not front-loaded: the final year still moves.
    final_year_daily = mean(weekly[-52:]) / 7.0
    assert final_year_daily > 25
