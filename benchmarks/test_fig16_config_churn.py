"""Figure 16 — weekly configuration changes over a 3-month window.

Paper: each sample is one device's total updated config lines
(changed/added/removed, excluding comments) in one week.  90% of backbone
device samples are under 500 lines/week vs only ~50% of POP/DC samples;
backbone changes are smaller but far more frequent (157.38 lines/change,
12.46 changes/week vs 738.09 and 2.53) — backbone devices are updated
incrementally while POP/DC devices are configured from a clean state.

PRs and DRs count as backbone devices, as in the paper.

We drive a 13-week design-change workload, regenerate configs for the
devices each change touches, and measure the diffs with the paper's
line-counting rules.
"""

from collections import defaultdict

import pytest
from conftest import publish_report

from repro import ObjectStore, seed_environment
from repro.common.util import format_table, mean, percentile
from repro.configgen.generator import ConfigGenerator
from repro.deploy.diff import count_changed_lines
from repro.fbnet.models import Device, NetworkSwitch, RackSwitch
from repro.fbnet.query import Expr, Op
from repro.simulation.executor import WorkloadExecutor
from repro.simulation.workloads import DesignChangeWorkload

WEEKS = 13  # the paper's 3-month window


def classify(device) -> str:
    """PRs and DRs count as backbone devices (paper section 6.3)."""
    if isinstance(device, (NetworkSwitch, RackSwitch)):
        return "pop/dc"
    return "backbone"


def run_churn():
    store = ObjectStore()
    env = seed_environment(
        store, pop_count=4, datacenter_count=2, backbone_site_count=3
    )
    generator = ConfigGenerator(store)
    executor = WorkloadExecutor(store, env, seed=2)
    ops = DesignChangeWorkload(seed=41, weeks=WEEKS).schedule()

    current: dict[str, str] = {}
    domain_of: dict[str, str] = {}
    # (device, week) -> lines; (device, week) -> change count
    weekly_lines: dict[tuple[str, int], int] = defaultdict(int)
    weekly_changes: dict[tuple[str, int], int] = defaultdict(int)
    per_change_lines: dict[str, list[int]] = {"backbone": [], "pop/dc": []}

    for op in ops:
        executed = executor.execute(op)
        if executed is None:
            continue
        for name in dict.fromkeys(executed.touched_devices):
            device = store.first(Device, Expr("name", Op.EQUAL, name))
            if device is None:
                current.pop(name, None)  # deleted by this change
                continue
            new_text = generator.generate_device(device).text
            old_text = current.get(name, "")
            changed = count_changed_lines(old_text, new_text)
            current[name] = new_text
            domain_of[name] = classify(device)
            if changed:
                weekly_lines[(name, op.week)] += changed
                weekly_changes[(name, op.week)] += 1
                per_change_lines[domain_of[name]].append(changed)
    return weekly_lines, weekly_changes, per_change_lines, domain_of


@pytest.fixture(scope="module")
def churn():
    return run_churn()


def test_fig16_weekly_config_churn(benchmark, churn):
    weekly_lines, weekly_changes, per_change_lines, domain_of = churn
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    samples: dict[str, list[int]] = {"backbone": [], "pop/dc": []}
    for (name, _week), lines in weekly_lines.items():
        samples[domain_of[name]].append(lines)
    changes_per_device_week: dict[str, list[int]] = {"backbone": [], "pop/dc": []}
    for (name, _week), count in weekly_changes.items():
        changes_per_device_week[domain_of[name]].append(count)

    def under_500(values):
        return 100.0 * sum(1 for v in values if v < 500) / len(values)

    rows = []
    for domain in ("backbone", "pop/dc"):
        ordered = sorted(samples[domain])
        rows.append(
            (
                domain,
                len(ordered),
                f"{under_500(ordered):.0f}%",
                f"{percentile(ordered, 50):.0f}",
                f"{mean(per_change_lines[domain]):.1f}",
                f"{mean(changes_per_device_week[domain]):.2f}",
            )
        )
    report = [
        f"Figure 16: weekly config changes over {WEEKS} weeks",
        "",
        format_table(
            (
                "domain", "device-week samples", "<500 lines/wk",
                "median lines/wk", "avg lines/change", "changes/device-week",
            ),
            rows,
        ),
        "",
        "paper: 90% of backbone samples <500 lines/week vs 50% of pop/dc;",
        "avg lines/change 157.38 (backbone) vs 738.09 (pop/dc);",
        "changes/week 12.46 (backbone) vs 2.53 (pop/dc).",
    ]
    publish_report("fig16_config_churn", "\n".join(report))

    backbone, popdc = samples["backbone"], samples["pop/dc"]
    assert backbone and popdc
    # Crossover shape: backbone weeks are mostly small; pop/dc weeks are
    # dominated by clean-state builds and often large.
    assert under_500(backbone) > under_500(popdc)
    assert under_500(backbone) >= 75.0
    # Backbone changes are much smaller per change...
    assert mean(per_change_lines["pop/dc"]) > 2 * mean(
        per_change_lines["backbone"]
    )
    # ...but more frequent per active device-week.
    assert mean(changes_per_device_week["backbone"]) > mean(
        changes_per_device_week["pop/dc"]
    )
