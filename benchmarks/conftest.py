"""Benchmark harness plumbing.

Every benchmark regenerates one of the paper's tables or figures and
registers a human-readable report; the reports are printed in the
terminal summary (so ``pytest benchmarks/ --benchmark-only | tee ...``
captures them) and written to ``benchmarks/results/``.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

_REPORTS: dict[str, str] = {}


def publish_report(name: str, text: str) -> None:
    """Register a table/figure report for the terminal summary + disk."""
    _REPORTS[name] = text
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction reports")
    for name in sorted(_REPORTS):
        terminalreporter.write_sep("-", name)
        terminalreporter.write_line(_REPORTS[name])


def pytest_sessionfinish(session, exitstatus):
    """Archive the run's self-telemetry so perf PRs can track trajectories.

    Every benchmark exercises the instrumented pipeline, so the global
    ``repro.obs`` registry accumulates store/configgen/deploy/monitoring
    metrics across the whole session; dump them next to the other results.
    """
    from repro import obs

    snap = obs.snapshot()
    if not any(snap["metrics"].values()):
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    obs.dump_json(str(RESULTS_DIR / "obs_metrics.json"))
