"""Closed-loop benchmark — detection-to-verified convergence time.

The remediation engine's promise is that a storm of concurrent faults
(drift on every device of a DC cluster, an urgent-syslog burst, seeded
push failures) converges to a settled fleet — every device ``verified``
or ``quarantined`` — in a bounded number of sweeps.  This bench runs
the acceptance storm once and records two timings:

* ``convergence_seconds`` — wall time of the remediation loop itself
  (detection already queued → every device settled), the engine's
  end-to-end cost on this machine.  Gated calibration-scaled by
  ``check_regression.py``.
* ``simulated_seconds`` — how much *simulated* time the loop consumed,
  a deterministic measure of sweep cadence (periods + triage + bake).

The storm is the same seeded scenario the chaos matrix replays in CI;
determinism of its outcome is asserted in
``tests/remediation/test_convergence.py`` — here we only require it
converges and time it.
"""

import json
import random
import time

from conftest import RESULTS_DIR, publish_report
from check_regression import calibration_seconds

from repro import Robotron, faults, obs, seed_environment
from repro.common.util import format_table
from repro.faults.plan import FaultPlan
from repro.fbnet.models import ClusterGeneration
from repro.remediation import RemediationPolicy

SEED = 1337
BURST = 5
MAX_SWEEPS = 30


def drift(device) -> None:
    if device.vendor == "vendor1":
        hacked = device.running_config + "interface et9/9\n no shutdown\n!\n"
    else:
        hacked = device.running_config + "interfaces {\n    et9/9 {\n    }\n}\n"
    device.commit(hacked)


def test_bench_remediation_convergence(benchmark):
    obs.reset()
    faults.uninstall()
    rng = random.Random(SEED)
    robotron = Robotron()
    env = seed_environment(robotron.store)
    cluster = robotron.build_cluster(
        "dc01.c01", env.datacenters["dc01"], ClusterGeneration.DC_GEN2
    )
    robotron.boot_fleet()
    provisioned = robotron.provision_cluster(cluster)
    assert provisioned.ok, provisioned.failed
    robotron.attach_monitoring()
    robotron.attach_remediation(
        RemediationPolicy(bake_seconds=0.0, cooldown_seconds=120.0)
    )

    names = sorted(robotron.fleet.devices)
    for name in names:
        drift(robotron.fleet.get(name))
    for name in sorted(rng.sample(names, BURST)):
        robotron.fleet.get(name).emit_syslog(
            "HW", "Critical Power lost on PSU 1"
        )
    plan = FaultPlan(seed=SEED)
    plan.inject("deploy.push", probability=0.1, times=10)
    robotron.install_fault_plan(plan)

    sim_start = robotron.scheduler.clock.now
    report = None
    convergence_seconds = None

    def converge():
        nonlocal report, convergence_seconds
        started = time.perf_counter()
        report = robotron.remediation_loop(max_sweeps=MAX_SWEEPS, period=60.0)
        convergence_seconds = time.perf_counter() - started

    benchmark.pedantic(converge, rounds=1, iterations=1)
    faults.uninstall()

    assert report.converged, report.states
    assert len(report.states) >= 20
    assert set(report.states.values()) <= {"verified", "quarantined"}
    simulated_seconds = robotron.scheduler.clock.now - sim_start

    rows = [
        ("devices in storm", str(len(report.states))),
        ("syslog burst", str(BURST)),
        ("sweeps to converge", str(report.sweeps)),
        ("actions taken", str(len(report.actions))),
        ("verified", str(len(report.verified))),
        ("quarantined", str(len(report.quarantined))),
        ("wall convergence", f"{convergence_seconds:.3f}s"),
        ("simulated convergence", f"{simulated_seconds:.0f}s"),
    ]
    text = [
        "Closed-loop remediation convergence",
        f"(storm: DC Gen2 drift + syslog burst, seed {SEED})",
        "",
        format_table(("measure", "value"), rows),
        "",
        "Every device settled as verified or quarantined; the wall time",
        "of the detect → act → verify loop is gated calibration-scaled",
        "against the committed baseline.",
    ]
    publish_report("BENCH_remediation", "\n".join(text))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_remediation.json").write_text(
        json.dumps(
            {
                "devices": len(report.states),
                "seed": SEED,
                "sweeps": report.sweeps,
                "actions": len(report.actions),
                "verified": len(report.verified),
                "quarantined": len(report.quarantined),
                "convergence_seconds": convergence_seconds,
                "simulated_seconds": simulated_seconds,
                "calibration_seconds": calibration_seconds(),
            },
            indent=2,
        )
        + "\n"
    )
