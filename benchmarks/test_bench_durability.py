"""Durability benchmark — WAL overhead on the write path, recovery time.

Two numbers bound what crash-consistency costs:

* ``wal_overhead_ratio`` — wall time of the 224-device design build with
  the write-ahead log attached vs. bare, min-of-rounds on the same
  machine.  Gated absolutely by ``check_regression.py`` (CEILING_FIELDS,
  like the flight recorder's 5% bar): journaling must stay a small
  multiplier on the write path, not a 2x tax.
* ``recovery_seconds`` — wall time of ``ObjectStore.recover`` replaying
  the full build (snapshot + WAL tail) back into a live store.  Gated
  calibration-scaled against the committed baseline.

Recovery correctness (bit-identical journal + tables) is asserted here
too — a fast recovery to the wrong state is worthless.
"""

import json
import shutil
import time
from pathlib import Path

from check_regression import calibration_seconds
from conftest import RESULTS_DIR, publish_report

from repro import ObjectStore, seed_environment
from repro.common.util import format_table
from repro.design.cluster import build_cluster
from repro.fbnet.durability import store_digest
from repro.fbnet.models import ClusterGeneration

CLUSTERS = 8  # DC Gen3 clusters of 28 devices each: 224 devices total
ROUNDS = 3
SNAPSHOT_EVERY = 6


def build_design(store) -> None:
    env = seed_environment(store, datacenter_count=CLUSTERS)
    for index in range(1, CLUSTERS + 1):
        dc = f"dc{index:02d}"
        build_cluster(
            store, f"{dc}.c01", env.datacenters[dc], ClusterGeneration.DC_GEN3
        )


def timed_build(root: Path | None) -> tuple[float, ObjectStore]:
    store = ObjectStore(name="main")
    if root is not None:
        store.attach_durability(root, snapshot_every=SNAPSHOT_EVERY)
    started = time.perf_counter()
    build_design(store)
    return time.perf_counter() - started, store


def test_bench_durability(benchmark, tmp_path):
    # -- WAL overhead: min-of-rounds bare vs journaled ---------------------
    bare_seconds = min(timed_build(None)[0] for _ in range(ROUNDS))
    wal_runs = []
    for index in range(ROUNDS):
        root = tmp_path / f"wal-{index}"
        wal_runs.append((timed_build(root)[0], root))
    wal_seconds, wal_root = min(wal_runs, key=lambda run: run[0])
    wal_overhead_ratio = wal_seconds / bare_seconds
    wal_bytes = sum(path.stat().st_size for path in wal_root.glob("*"))

    # -- recovery time: replay the WAL into a live store -------------------
    # Recover from a copy so the timed run sees the original file layout
    # (recovery truncates torn tails and reopens the last segment).
    oracle = ObjectStore(name="main")
    build_design(oracle)

    recovery_seconds = None
    recovered = None

    def recover():
        nonlocal recovery_seconds, recovered
        root = tmp_path / "recover"
        if root.exists():
            shutil.rmtree(root)
        shutil.copytree(wal_root, root)
        started = time.perf_counter()
        recovered = ObjectStore.recover(root, attach=False)
        recovery_seconds = time.perf_counter() - started

    benchmark.pedantic(recover, rounds=1, iterations=1)

    # Correctness before speed: the recovered store is bit-identical to a
    # crash-free build.
    assert store_digest(recovered) == store_digest(oracle)
    records = recovered.journal_position

    rows = [
        ("devices in design", "224"),
        ("journal records", str(records)),
        ("bare build (best of 3)", f"{bare_seconds:.3f}s"),
        ("journaled build (best of 3)", f"{wal_seconds:.3f}s"),
        ("WAL overhead", f"{(wal_overhead_ratio - 1) * 100:+.1f}%"),
        ("WAL + snapshot bytes", f"{wal_bytes:,}"),
        ("recovery (snapshot + tail replay)", f"{recovery_seconds:.3f}s"),
    ]
    text = [
        "Durability: WAL overhead and crash recovery",
        f"(workload: {CLUSTERS} DC Gen3 clusters, snapshot every "
        f"{SNAPSHOT_EVERY} commits)",
        "",
        format_table(("measure", "value"), rows),
        "",
        "The recovered store's journal and tables are bit-identical to a",
        "crash-free build; the overhead ratio is gated absolutely and the",
        "recovery time calibration-scaled by check_regression.py.",
    ]
    publish_report("BENCH_durability", "\n".join(text))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_durability.json").write_text(
        json.dumps(
            {
                "devices": 224,
                "records": records,
                "bare_seconds": bare_seconds,
                "wal_seconds": wal_seconds,
                "wal_overhead_ratio": wal_overhead_ratio,
                "wal_bytes": wal_bytes,
                "recovery_seconds": recovery_seconds,
                "calibration_seconds": calibration_seconds(),
            },
            indent=2,
        )
        + "\n"
    )
