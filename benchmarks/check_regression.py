#!/usr/bin/env python3
"""Benchmark-regression gate: compare fresh results against baselines.

CI copies the committed ``benchmarks/results/`` aside, reruns the
benchmarks, then runs this script to compare the fresh JSON results
against the baseline copy.  Two kinds of checks:

* **wall-time fields** — a fresh time more than ``TOLERANCE`` slower
  than baseline fails the gate.  Raw seconds are not comparable across
  machines (the committed baselines may come from different hardware
  than a CI runner), so every benchmark JSON records a
  ``calibration_seconds`` — the wall time of a fixed CPU workload on the
  machine that produced it — and times are compared as multiples of
  their own machine's calibration.
* **floor fields** — speedups that must not sink below a fixed floor
  (the paper-derived acceptance bars), compared without scaling since a
  ratio is already machine-neutral.

Usage::

    python benchmarks/check_regression.py \
        --baseline /tmp/bench-baseline --current benchmarks/results
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path
from time import perf_counter

#: A fresh wall time may be at most this multiple of the (calibration-
#: scaled) baseline before the gate fails: >25% slowdown is a regression.
TOLERANCE = 1.25

#: file stem -> wall-time fields compared calibration-scaled.
WALL_FIELDS = {
    # incremental_seconds is deliberately absent: it is a tens-of-ms
    # measurement whose run-to-run noise exceeds the tolerance; the
    # speedup floor below already guards the incremental path.
    "sec54_incremental_configgen": (
        "initial_full_seconds",
        "full_regeneration_seconds",
    ),
    "sec53_deployment_modes": ("drill_seconds",),
    "BENCH_parallel": ("serial_seconds", "parallel_seconds"),
    "BENCH_remediation": ("convergence_seconds",),
    "BENCH_durability": ("recovery_seconds",),
    # cycle_seconds and sweep_seconds are deliberately absent for the
    # same reason as incremental_seconds above: both are tens-of-ms
    # measurements whose noise exceeds the tolerance; the benchmark's
    # own assertions (O(dirty) cycle, zero-discrepancy sweep) guard
    # those paths.
    "BENCH_shard": (
        "build_seconds",
        "provision_seconds",
    ),
    "BENCH_rpc_cache": (
        "uncached_seconds",
        "cached_seconds",
    ),
}

#: file stem -> {field: minimum} ratios that must hold absolutely.
FLOOR_FIELDS = {
    "sec54_incremental_configgen": {"speedup": 10.0},
    "BENCH_parallel": {"speedup": 2.0},
    # ROADMAP item 1's scale bar: the sharded benchmark must drive the
    # full management cycle over a 2000+ device fleet (counts are
    # machine-neutral, so no calibration scaling applies).
    "BENCH_shard": {"devices": 2000},
    # ROADMAP item 2's read-front-door bar: the cache must keep a 5x
    # throughput edge (the benchmark itself asserts the 10x target; the
    # gate leaves headroom for runner noise), serve at least 1000 cached
    # qps in absolute terms, and stay at fleet scale.
    "BENCH_rpc_cache": {"speedup": 5.0, "cached_qps": 1000.0, "devices": 2000},
}

#: file stem -> {field: maximum} ratios that must hold absolutely —
#: instrumentation overhead bars (ratio of instrumented to bare wall
#: time on the same machine, so no calibration scaling is needed).
CEILING_FIELDS = {
    # The flight recorder rides the incremental hot path; it may cost
    # at most 5% on a mutate + regenerate_dirty round.
    "sec54_incremental_configgen": {"flight_overhead_ratio": 1.05},
    # Write-ahead journaling (frames + periodic full snapshots) rides
    # every commit; measured ~1.25x on the 224-device build, gated with
    # headroom for runner noise.
    "BENCH_durability": {"wal_overhead_ratio": 1.6},
}


def calibration_seconds(rounds: int = 3) -> float:
    """Wall time of a fixed CPU workload (best of ``rounds``).

    Benchmarks store this next to their timings so the regression gate
    can compare runs from different machines: a timing is judged as a
    multiple of its own machine's calibration, not in raw seconds.
    """
    best = float("inf")
    for _ in range(rounds):
        digest = b"robotron-calibration"
        started = perf_counter()
        for _ in range(200_000):
            digest = hashlib.sha256(digest).digest()
        best = min(best, perf_counter() - started)
    return best


def load(directory: Path, stem: str) -> dict | None:
    path = directory / f"{stem}.json"
    if not path.is_file():
        return None
    return json.loads(path.read_text())


def check(baseline_dir: Path, current_dir: Path) -> list[str]:
    """All gate failures, empty when the run is clean."""
    failures: list[str] = []
    for stem in sorted(set(WALL_FIELDS) | set(FLOOR_FIELDS) | set(CEILING_FIELDS)):
        current = load(current_dir, stem)
        if current is None:
            failures.append(f"{stem}: no fresh result in {current_dir}")
            continue

        for field, floor in FLOOR_FIELDS.get(stem, {}).items():
            value = current.get(field)
            if value is None:
                failures.append(f"{stem}: fresh result lacks {field!r}")
            elif value < floor:
                failures.append(
                    f"{stem}: {field} {value:.2f} below the {floor:.0f}x floor"
                )
            else:
                print(f"ok   {stem}.{field}: {value:.2f} (floor {floor:.0f})")

        for field, ceiling in CEILING_FIELDS.get(stem, {}).items():
            value = current.get(field)
            if value is None:
                failures.append(f"{stem}: fresh result lacks {field!r}")
            elif value > ceiling:
                failures.append(
                    f"{stem}: {field} {value:.3f} above the {ceiling:.2f} ceiling"
                )
            else:
                print(f"ok   {stem}.{field}: {value:.3f} (ceiling {ceiling:.2f})")

        baseline = load(baseline_dir, stem)
        if baseline is None:
            # First run of a new benchmark: nothing to regress against.
            print(f"note {stem}: no baseline JSON; wall-time gate skipped")
            continue
        base_cal = baseline.get("calibration_seconds")
        cur_cal = current.get("calibration_seconds")
        if not base_cal or not cur_cal:
            print(f"note {stem}: calibration missing; wall-time gate skipped")
            continue
        for field in WALL_FIELDS.get(stem, ()):
            base = baseline.get(field)
            cur = current.get(field)
            if base is None or cur is None:
                failures.append(f"{stem}: missing wall-time field {field!r}")
                continue
            ratio = (cur / cur_cal) / (base / base_cal)
            status = "ok  " if ratio <= TOLERANCE else "FAIL"
            print(
                f"{status} {stem}.{field}: {cur:.3f}s vs {base:.3f}s "
                f"(scaled ratio {ratio:.2f}, tolerance {TOLERANCE})"
            )
            if ratio > TOLERANCE:
                failures.append(
                    f"{stem}: {field} regressed {ratio:.2f}x "
                    f"calibration-scaled (> {TOLERANCE})"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--current", type=Path, required=True)
    args = parser.parse_args(argv)
    failures = check(args.baseline, args.current)
    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
