"""Read-front-door benchmark — cached vs uncached QPS on the 2k fleet.

ROADMAP item 2's acceptance run: build :data:`FLEET_2K` (2022 devices)
into a region-partitioned store, then replay the same seeded
Zipf-distributed read stream — device pages, linecard lookups, site
scans, drain dashboards — through two read service replicas over the
identical store: one dispatching straight to the store, one fronted by
a :class:`ReadCache`.  Both paths pay the full RPC tax (wire marshal,
dispatch, wire unmarshal), so the measured gap is the cache's alone.

Gated numbers (``check_regression.py``):

* ``speedup`` — cached / uncached throughput; floor 5x, target >= 10x.
* ``cached_qps`` — absolute floor, coarse enough for any machine.
* ``devices`` — the fleet must stay at ROADMAP scale (>= 2000).
* ``uncached_seconds`` / ``cached_seconds`` — calibration-scaled wall
  gates against the committed baseline.

Correctness before speed: every cached answer in the stream is
byte-compared against the uncached replica's, and a mutation storm at
the end must invalidate precisely (zero stale serves) without sinking
hit rate below the gate.
"""

import json
import os
import time

from check_regression import calibration_seconds
from conftest import RESULTS_DIR, publish_report

from repro import obs
from repro.common.util import format_table
from repro.design.fleet import FLEET_2K, build_fleet
from repro.design.workload import ZipfReadWorkload
from repro.fbnet.rpc import ReadCache, RpcRequest, RpcResponse, ServiceReplica
from repro.fbnet.sharding import ShardedObjectStore

SHARDS = int(os.environ.get("FBNET_SHARDS", "4"))
SEED = int(os.environ.get("CHAOS_SEED", "1337"))

#: Single-get requests timed per replica.
REQUESTS = 4000
#: Multi-get batches timed on top (batch size below).
BATCHES = 100
BATCH_SIZE = 16
#: Mutation-storm rounds appended after the timed runs.
STORM_ROUNDS = 50


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _drive(replica: ServiceReplica, wires: list[bytes]) -> tuple[float, list[float]]:
    """Serve every request; returns (total seconds, per-request seconds)."""
    latencies = []
    started = time.perf_counter()
    for wire in wires:
        t0 = time.perf_counter()
        replica.handle(wire)
        latencies.append(time.perf_counter() - t0)
    return time.perf_counter() - started, latencies


def test_bench_rpc_cache(benchmark):
    obs.reset()
    store = ShardedObjectStore(shards=SHARDS)

    started = time.perf_counter()
    build = build_fleet(store, FLEET_2K)
    build_seconds = time.perf_counter() - started
    devices = build.all_devices()
    assert len(devices) == FLEET_2K.device_count >= 2000

    workload = ZipfReadWorkload.over_store(store, seed=SEED)
    stream = workload.requests(REQUESTS)
    wires = [
        RpcRequest(service="read", method="get", args=spec.to_wire()).to_wire()
        for spec in stream
    ]
    batch_wires = [
        RpcRequest(
            service="read",
            method="multi_get",
            args={"specs": [spec.to_wire() for spec in batch]},
        ).to_wire()
        for batch in workload.batches(BATCHES, BATCH_SIZE)
    ]

    uncached = ServiceReplica("plain-0", "na-east", "read", store)
    cache = ReadCache(store, name="bench")
    cached = ServiceReplica("cached-0", "na-east", "read", store, cache=cache)

    # -- answers must be identical before any timing matters ---------------
    for wire in wires[:200]:
        got = RpcResponse.from_wire(cached.handle(wire)).result()
        want = RpcResponse.from_wire(uncached.handle(wire)).result()
        assert got == want
    cache.clear()
    obs.reset()

    # -- the timed runs: same stream, same store, same wire tax ------------
    uncached_seconds = None
    cached_seconds = None
    uncached_lat: list[float] = []
    cached_lat: list[float] = []

    def timed_runs():
        nonlocal uncached_seconds, cached_seconds, uncached_lat, cached_lat
        uncached_seconds, uncached_lat = _drive(uncached, wires)
        cached_seconds, cached_lat = _drive(cached, wires)

    benchmark.pedantic(timed_runs, rounds=1, iterations=1)

    uncached_qps = REQUESTS / uncached_seconds
    cached_qps = REQUESTS / cached_seconds
    speedup = cached_qps / uncached_qps

    # -- batched multi-get over the warmed cache ---------------------------
    started = time.perf_counter()
    for wire in batch_wires:
        cached.handle(wire)
    batch_seconds = time.perf_counter() - started
    batch_qps = (BATCHES * BATCH_SIZE) / batch_seconds

    stats = cache.stats()
    hit_rate = stats["hits"] / (stats["hits"] + stats["misses"])

    # -- mutation storm: precise invalidation, still no stale serves -------
    for _ in range(STORM_ROUNDS):
        workload.mutation(store)
        for spec in workload.requests(4):
            wire = RpcRequest(
                service="read", method="get", args=spec.to_wire()
            ).to_wire()
            got = RpcResponse.from_wire(cached.handle(wire)).result()
            want = RpcResponse.from_wire(uncached.handle(wire)).result()
            assert got == want, "stale serve after a journal-mapped mutation"
    storm_stats = cache.stats()

    assert speedup >= 10.0, f"cached speedup {speedup:.1f}x below the 10x target"
    assert storm_stats["invalidations"] > 0

    rows = [
        ("devices in fleet", str(len(devices))),
        ("FBNet objects", f"{store.total_objects():,}"),
        ("shards", str(SHARDS)),
        ("fleet build", f"{build_seconds:.2f}s"),
        ("read stream", f"{REQUESTS:,} Zipf requests (seed {SEED})"),
        ("uncached dispatch", f"{uncached_seconds:.2f}s = {uncached_qps:,.0f} qps"),
        ("cached dispatch", f"{cached_seconds:.2f}s = {cached_qps:,.0f} qps"),
        ("speedup", f"{speedup:.1f}x"),
        ("uncached p50 / p99", f"{_percentile(uncached_lat, 0.50) * 1e3:.2f}ms"
         f" / {_percentile(uncached_lat, 0.99) * 1e3:.2f}ms"),
        ("cached p50 / p99", f"{_percentile(cached_lat, 0.50) * 1e6:.0f}us"
         f" / {_percentile(cached_lat, 0.99) * 1e6:.0f}us"),
        ("multi-get batches", f"{BATCHES} x {BATCH_SIZE} = {batch_qps:,.0f} qps"),
        ("hit rate (timed stream)", f"{hit_rate:.1%}"),
        ("storm invalidations", f"{storm_stats['invalidations']:.0f}"),
        ("storm stale-on-arrival evictions",
         f"{storm_stats['stale_evictions']:.0f}"),
    ]
    text = [
        "Read front door: cached vs uncached replica dispatch on fleet_2k",
        f"(Zipf workload: 45% device pages, 25% linecard lookups,"
        f" 20% site scans, 10% drain dashboards; {SHARDS} shards)",
        "",
        format_table(("measure", "value"), rows),
        "",
        "Same wire, same store: the cache serves journal-validated",
        "entries, invalidated precisely by the mutation storm — every",
        "storm answer matched the uncached replica byte-for-byte.",
    ]
    publish_report("BENCH_rpc_cache", "\n".join(text))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_rpc_cache.json").write_text(
        json.dumps(
            {
                "devices": len(devices),
                "shards": SHARDS,
                "seed": SEED,
                "requests": REQUESTS,
                "build_seconds": build_seconds,
                "uncached_seconds": uncached_seconds,
                "cached_seconds": cached_seconds,
                "uncached_qps": uncached_qps,
                "cached_qps": cached_qps,
                "speedup": speedup,
                "uncached_p50_ms": _percentile(uncached_lat, 0.50) * 1e3,
                "uncached_p99_ms": _percentile(uncached_lat, 0.99) * 1e3,
                "cached_p50_ms": _percentile(cached_lat, 0.50) * 1e3,
                "cached_p99_ms": _percentile(cached_lat, 0.99) * 1e3,
                "batch_qps": batch_qps,
                "hit_rate": hit_rate,
                "storm_invalidations": storm_stats["invalidations"],
                "storm_stale_evictions": storm_stats["stale_evictions"],
                "calibration_seconds": calibration_seconds(),
            },
            indent=2,
        )
        + "\n"
    )
