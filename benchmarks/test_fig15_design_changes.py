"""Figure 15 — number of changed FBNet objects across design changes.

Paper (one year of design changes): (1) fan-out ranges from a few objects
to ~10,000; (2) POP/DC changes are bigger than backbone changes — median
120 vs 20 — because the former build whole clusters while the latter are
incremental; (3) interface objects change most often, then circuits, then
v6 prefixes (v6 > v4 as clusters go v6-only).

We execute a year-scale design-change workload through the real design
tools and measure the same distributions from the DesignChangeEntry
audit log.
"""

from collections import Counter

import pytest
from conftest import publish_report

from repro import ObjectStore, seed_environment
from repro.common.util import format_table, median, percentile
from repro.design.validation import validate
from repro.simulation.executor import WorkloadExecutor
from repro.simulation.workloads import DesignChangeWorkload

WEEKS = 40  # a year-scale horizon that stays laptop-fast


def run_workload():
    store = ObjectStore()
    env = seed_environment(
        store, pop_count=4, datacenter_count=2, backbone_site_count=3
    )
    executor = WorkloadExecutor(store, env, seed=1)
    ops = DesignChangeWorkload(seed=23, weeks=WEEKS).schedule()
    executor.run(ops)
    return store, executor


@pytest.fixture(scope="module")
def workload_result():
    return run_workload()


def test_fig15_changed_objects_distributions(benchmark, workload_result):
    store, executor = workload_result
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # timing below
    benchmark.extra_info["executed_changes"] = len(executor.executed)

    backbone = sorted(
        change.total for change in executor.executed if change.domain == "backbone"
    )
    popdc = sorted(
        change.total
        for change in executor.executed
        if change.domain in ("pop", "datacenter")
    )
    assert backbone and popdc

    def dist_row(label, values):
        return (
            label,
            len(values),
            min(values),
            f"{median(values):.0f}",
            f"{percentile(values, 90):.0f}",
            max(values),
        )

    # Per-type breakdown across all changes.
    per_type: Counter = Counter()
    for change in executor.executed:
        for model, buckets in change.per_type.items():
            per_type[model] += sum(buckets.values())
    interesting = [
        "PhysicalInterface", "AggregatedInterface", "Circuit",
        "V6Prefix", "V4Prefix",
    ]
    type_rows = [(name, per_type.get(name, 0)) for name in interesting]
    device_total = sum(
        count for name, count in per_type.items()
        if name.endswith(("Router", "Switch"))
    )
    type_rows.append(("devices (all roles)", device_total))

    report = [
        f"Figure 15: changed objects per design change ({WEEKS} weeks)",
        "",
        format_table(
            ("domain", "changes", "min", "median", "p90", "max"),
            [dist_row("pop/dc", popdc), dist_row("backbone", backbone)],
        ),
        "",
        "objects changed by type (created+modified+deleted):",
        format_table(("object type", "changed"), type_rows),
        "",
        "paper: median 120 (pop/dc) vs 20 (backbone); fan-out few..10,000;",
        "interfaces change most, then circuits; v6 prefixes > v4 prefixes.",
        f"skipped ops (no eligible target): {len(executor.skipped)}",
    ]
    publish_report("fig15_design_changes", "\n".join(report))

    # Shape assertions, mirroring the paper's three findings:
    # (1) high fan-out range.
    assert min(backbone + popdc) <= 5
    assert max(popdc) > 100
    # (2) POP/DC changes are far bigger than backbone changes.
    assert median(popdc) > 4 * median(backbone)
    assert median(popdc) >= 40
    assert median(backbone) <= 40
    # (3) interfaces are the most-changed type; v6 beats v4.
    interface_changes = per_type["PhysicalInterface"] + per_type["AggregatedInterface"]
    assert interface_changes >= per_type["Circuit"]
    assert per_type["Circuit"] > device_total
    assert per_type["V6Prefix"] > per_type["V4Prefix"]

    # The year of churn left a consistent design behind.
    assert validate(store) == []


def test_fig15_workload_execution_speed(benchmark):
    """Materialization throughput: a quarter of design churn end-to-end."""

    def quarter():
        store = ObjectStore()
        env = seed_environment(
            store, pop_count=4, datacenter_count=2, backbone_site_count=3
        )
        executor = WorkloadExecutor(store, env, seed=9)
        executor.run(DesignChangeWorkload(seed=5, weeks=6).schedule())
        return len(executor.executed)

    executed = benchmark.pedantic(quarter, rounds=1, iterations=1)
    assert executed > 50
