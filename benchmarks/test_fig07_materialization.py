"""Figure 7 / §5.1.1 — materializing the 4-post POP template.

Paper: "Robotron constructs 2 BackboneRouter objects and 4 NetworkSwitch
objects ... In total, 94 objects of various types (e.g., Circuit,
BgpV6Session) are created in FBNet", and template designs of tens of
thousands of objects complete "within minutes".  We reproduce the exact
object count and measure materialization throughput.
"""

from collections import Counter

from conftest import publish_report

from repro import ObjectStore, seed_environment
from repro.common.util import format_table
from repro.design.materializer import materialize_cluster
from repro.design.topology import four_post_pop_template
from repro.fbnet.models import ClusterGeneration

#: Types the paper's "94 objects" counts (Figure 7 labels devices,
#: interfaces, circuits, prefixes, and BGP sessions).
PAPER_COUNTED = {
    "PeeringRouter", "NetworkSwitch", "AggregatedInterface",
    "PhysicalInterface", "Circuit", "V4Prefix", "V6Prefix",
    "BgpV4Session", "BgpV6Session",
}


def build_once():
    store = ObjectStore()
    env = seed_environment(store)
    position = store.journal_position
    materialize_cluster(
        store,
        four_post_pop_template(),
        "pop01.c01",
        env.pops["pop01"],
        generation=ClusterGeneration.POP_GEN2,
    )
    created = Counter(
        record.model
        for record in store.journal_since(position)
        if record.op.value == "create"
    )
    return created


def test_fig07_four_post_materialization(benchmark):
    created = benchmark(build_once)
    paper_counted = sum(
        count for model, count in created.items() if model in PAPER_COUNTED
    )
    total = sum(created.values())

    rows = [
        (model, count, "yes" if model in PAPER_COUNTED else "bookkeeping")
        for model, count in sorted(created.items())
    ]
    report = [
        "Figure 7: 4-post POP cluster template materialization",
        "",
        format_table(("object type", "created", "paper-counted"), rows),
        "",
        f"paper-counted objects : {paper_counted}   (paper: 94)",
        f"total objects created : {total}   (incl. Cluster/LinkGroup/Linecard)",
    ]
    publish_report("fig07_materialization", "\n".join(report))

    # The headline reproduction: exactly the paper's 94 objects.
    assert paper_counted == 94
    assert created["PeeringRouter"] == 2
    assert created["NetworkSwitch"] == 4


def test_fig07_scales_to_tens_of_thousands(benchmark):
    """Paper: tens of thousands of objects materialize within minutes."""

    def build_many():
        store = ObjectStore()
        env = seed_environment(store, pop_count=40)
        for index, pop in enumerate(env.pops.values(), 1):
            materialize_cluster(
                store,
                four_post_pop_template(),
                f"{pop.name}.c01",
                pop,
                generation=ClusterGeneration.POP_GEN2,
            )
        return store.total_objects()

    total = benchmark.pedantic(build_many, rounds=1, iterations=1)
    assert total > 4000  # 40 clusters x ~109 objects + catalog
