"""Section 5.3 — deployment-mode safety under injected faults.

The paper's four incremental-update mechanisms exist to bound blast
radius.  This bench deploys a fleet-wide config change under each mode
while injecting device faults, and measures what each mode let through:

* dryrun touches nothing;
* atomic mode leaves zero partially-updated devices after a mid-flight
  failure;
* phased mode stops at the failing phase, bounding exposure to the
  canary share;
* confirm mode reverts everything when verification fails.
"""

import json
import time

import pytest
from check_regression import calibration_seconds
from conftest import RESULTS_DIR, publish_report

from repro import Robotron, seed_environment
from repro.common.util import format_table
from repro.deploy.phases import PhaseSpec
from repro.fbnet.models import ClusterGeneration, Device


def build_network():
    robotron = Robotron()
    env = seed_environment(robotron.store)
    cluster = robotron.build_cluster(
        "pop01.c01", env.pops["pop01"], ClusterGeneration.POP_GEN2
    )
    robotron.boot_fleet()
    assert robotron.provision_cluster(cluster).ok
    return robotron


def updated_configs(robotron):
    """A fleet-wide incremental change: bump every device's MTU line."""
    configs = {}
    for device in robotron.store.all(Device):
        text = robotron.generator.golden[device.name].text
        configs[device.name] = text.replace("mtu 9192", "mtu 9100").replace(
            "mtu 9192;", "mtu 9100;"
        )
    return configs


def count_updated(robotron):
    return sum(
        1
        for device in robotron.fleet.devices.values()
        if "9100" in device.running_config
    )


def run_drill():
    results = {}

    # Dryrun: nothing changes, every diff produced.
    robotron = build_network()
    report = robotron.deployer.dryrun(updated_configs(robotron))
    results["dryrun"] = {
        "updated": count_updated(robotron),
        "diffs": len(report.diffs),
        "ok": report.ok,
    }

    # Atomic with a mid-flight failure: all-or-nothing.
    robotron = build_network()
    victims = sorted(robotron.fleet.devices)[7]
    robotron.fleet.get(victims).fail_next_commits = 1
    report = robotron.deployer.atomic_deploy(updated_configs(robotron))
    results["atomic+fault"] = {
        "updated": count_updated(robotron),
        "rolled_back": len(report.rolled_back),
        "ok": report.ok,
    }

    # Phased with a failing health check after the canary phase.
    robotron = build_network()
    phases = [PhaseSpec(name="canary", percentage=10),
              PhaseSpec(name="rest", percentage=100)]
    report = robotron.deployer.phased_deploy(
        updated_configs(robotron), phases, health_check=lambda batch: False
    )
    results["phased+bad-health"] = {
        "updated": count_updated(robotron),
        "skipped": len(report.skipped),
        "notified": bool(report.notifications),
    }

    # Confirmation without verification: immediate active revert.
    robotron = build_network()
    report = robotron.deployer.deploy_with_confirmation(
        updated_configs(robotron), grace_seconds=600, verify=lambda: False
    )
    results["confirm+no-verify"] = {
        "reverted": len(report.rolled_back),
        "updated_after_revert": count_updated(robotron),
    }

    # Guarded rollout: a failing canary restores last-known-good fleet-wide.
    robotron = build_network()
    victim = sorted(robotron.fleet.devices)[1]
    robotron.fleet.get(victim).fail_next_commits = 1
    result = robotron.guarded_deploy(
        updated_configs(robotron),
        [PhaseSpec(name="canary", percentage=25),
         PhaseSpec(name="rest", percentage=100)],
        bake_seconds=60,
    )
    results["guarded+fault"] = {
        "updated": count_updated(robotron),
        "outcome": result.outcome.value,
        "restored": len(result.restored),
    }

    # And the happy path: atomic deploy with no faults converges BGP.
    robotron = build_network()
    report = robotron.deployer.atomic_deploy(updated_configs(robotron))
    results["atomic+clean"] = {
        "updated": count_updated(robotron),
        "ok": report.ok,
        "bgp_established": robotron.fleet.all_bgp_established(),
    }
    results["fleet_size"] = len(robotron.fleet)
    return results


@pytest.fixture(scope="module")
def drill():
    started = time.perf_counter()
    results = run_drill()
    results["drill_seconds"] = time.perf_counter() - started
    return results


def test_sec53_deployment_mode_safety(benchmark, drill):
    results = benchmark.pedantic(lambda: drill, rounds=1, iterations=1)
    fleet = results["fleet_size"]

    rows = [
        ("dryrun", f"0/{fleet} devices touched, {results['dryrun']['diffs']} diffs"),
        (
            "atomic + commit fault",
            f"{results['atomic+fault']['updated']}/{fleet} left updated, "
            f"{results['atomic+fault']['rolled_back']} rolled back",
        ),
        (
            "phased + failing health",
            f"{results['phased+bad-health']['updated']}/{fleet} updated "
            f"(canary only), {results['phased+bad-health']['skipped']} skipped",
        ),
        (
            "confirm + no verification",
            f"{results['confirm+no-verify']['reverted']}/{fleet} actively "
            f"reverted, {results['confirm+no-verify']['updated_after_revert']} "
            "left updated",
        ),
        (
            "guarded + canary fault",
            f"{results['guarded+fault']['updated']}/{fleet} left updated, "
            f"outcome={results['guarded+fault']['outcome']}, "
            f"{results['guarded+fault']['restored']} restored to LKG",
        ),
        (
            "atomic, no faults",
            f"{results['atomic+clean']['updated']}/{fleet} updated, BGP "
            f"established={results['atomic+clean']['bgp_established']}",
        ),
    ]
    report = [
        "Section 5.3: deployment-mode safety drill (14-device POP)",
        "",
        format_table(("mode + injected fault", "outcome"), rows),
        "",
        "paper: dryrun previews, atomic rolls back whole transactions,",
        "phased halts on failed health metrics with notification,",
        "unconfirmed changes are actively reverted on the spot, and the",
        "guarded rollout restores every touched device to last-known-good.",
    ]
    publish_report("sec53_deployment_modes", "\n".join(report))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "sec53_deployment_modes.json").write_text(
        json.dumps(
            {
                "fleet_size": fleet,
                "drill_seconds": results["drill_seconds"],
                "calibration_seconds": calibration_seconds(),
            },
            indent=2,
        )
        + "\n"
    )

    assert results["dryrun"]["updated"] == 0
    assert results["dryrun"]["diffs"] == fleet
    assert results["atomic+fault"]["updated"] == 0
    assert not results["atomic+fault"]["ok"]
    assert results["phased+bad-health"]["updated"] == 2  # ceil(10% of 14)
    assert results["phased+bad-health"]["notified"]
    assert results["confirm+no-verify"]["reverted"] == fleet
    assert results["confirm+no-verify"]["updated_after_revert"] == 0
    assert results["guarded+fault"]["updated"] == 0
    assert results["guarded+fault"]["outcome"] == "rolled_back"
    assert results["atomic+clean"]["updated"] == fleet
    assert results["atomic+clean"]["bgp_established"]
