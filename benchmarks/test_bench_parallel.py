"""Tentpole benchmark — parallel config generation vs. serial.

Config generation at fleet scale is dominated by per-device management-
plane I/O; the deterministic worker pool exists to overlap exactly that.
This bench builds the sec54 fleet (8 DC Gen3 clusters, 224 devices),
measures the machine's actual per-device render cost, emulates an I/O
round trip proportional to it (so the workload shape is hardware-
independent), and generates the fleet serially and on a pool of four.
The pooled run must be byte-identical and at least 2x faster; the
regression gate in ``check_regression.py`` holds both floors over time.
"""

import json
import time

from conftest import RESULTS_DIR, publish_report
from check_regression import calibration_seconds
from test_sec54_incremental_configgen import CLUSTERS, build_design

from repro import parallel
from repro.common.util import format_table
from repro.configgen.generator import ConfigGenerator
from repro.fbnet.models import Device

WORKERS = 4

#: Emulated management-plane RTT as a multiple of the measured per-device
#: render cost.  2.5x makes the workload ~70% I/O — the regime the pool
#: targets — while keeping the serial leg a few seconds at most.
IO_COST_RATIO = 2.5
IO_LATENCY_MIN, IO_LATENCY_MAX = 0.002, 0.050


def measured_render_cost(store, devices) -> float:
    """Per-device render seconds on this machine (one-cluster probe)."""
    probe = [d for d in devices if d.name.startswith("dc01.")]
    generator = ConfigGenerator(store)
    started = time.perf_counter()
    with parallel.workers(1):
        generator.generate_devices(probe)
    return (time.perf_counter() - started) / len(probe)


def generate_timed(store, devices, configerator, io_latency, worker_count):
    generator = ConfigGenerator(store, configerator, io_latency=io_latency)
    started = time.perf_counter()
    with parallel.workers(worker_count):
        configs = generator.generate_devices(devices)
    return time.perf_counter() - started, {
        name: config.text for name, config in configs.items()
    }


def test_bench_parallel_configgen(benchmark):
    store = build_design()
    devices = sorted(store.all(Device), key=lambda d: d.name)
    render_cost = measured_render_cost(store, devices)
    io_latency = min(IO_LATENCY_MAX, max(IO_LATENCY_MIN, IO_COST_RATIO * render_cost))

    serial_gen = ConfigGenerator(store)
    serial_seconds, serial_texts = generate_timed(
        store, devices, serial_gen.configerator, io_latency, 1
    )

    parallel_seconds = None
    pooled_texts = None

    def pooled():
        nonlocal parallel_seconds, pooled_texts
        parallel_seconds, pooled_texts = generate_timed(
            store, devices, serial_gen.configerator, io_latency, WORKERS
        )

    benchmark.pedantic(pooled, rounds=1, iterations=1)
    speedup = serial_seconds / parallel_seconds

    # Correctness before speed: the pooled fleet is byte-identical.
    assert pooled_texts == serial_texts
    assert len(pooled_texts) == len(devices)
    assert speedup >= 2, (
        f"pool of {WORKERS} only {speedup:.2f}x faster than serial"
    )

    rows = [
        ("devices in design", str(len(devices))),
        ("measured render cost", f"{render_cost * 1000:.2f}ms/device"),
        ("emulated I/O round trip", f"{io_latency * 1000:.2f}ms/device"),
        ("serial generation", f"{serial_seconds:.3f}s"),
        (f"pool of {WORKERS}", f"{parallel_seconds:.3f}s"),
        ("speedup", f"{speedup:.2f}x"),
        ("byte-identical output", "yes"),
    ]
    text = [
        "Deterministic parallel config generation",
        f"(workload: {CLUSTERS} DC Gen3 clusters, I/O-dominated renders)",
        "",
        format_table(("measure", "value"), rows),
        "",
        "The worker pool overlaps per-device management-plane I/O while",
        "merging results, fault state, and clock in task-key order — the",
        "output is byte-for-byte the serial output, at any pool size.",
    ]
    publish_report("BENCH_parallel", "\n".join(text))

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_parallel.json").write_text(
        json.dumps(
            {
                "devices": len(devices),
                "clusters": CLUSTERS,
                "workers": WORKERS,
                "render_cost_seconds": render_cost,
                "io_latency_seconds": io_latency,
                "serial_seconds": serial_seconds,
                "parallel_seconds": parallel_seconds,
                "speedup": speedup,
                "calibration_seconds": calibration_seconds(),
            },
            indent=2,
        )
        + "\n"
    )
